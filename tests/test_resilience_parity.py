"""Checkpoint/resume and budget-degradation parity tests.

The core guarantee of the resilience layer: interrupting a run at any
iteration/root boundary and resuming it from its checkpoint reproduces
the uninterrupted run *exactly* — same weights, same density, same upper
bound — and a run with a generous budget is byte-identical to one with
no budget at all.
"""

import itertools

import pytest

from repro import densest_subgraph
from repro.core import SCTIndex, sctl, sctl_star, sctl_star_exact, sctl_star_sample
from repro.core.density import PartialResult
from repro.errors import BudgetExhausted, CheckpointError
from repro.graph import relaxed_caveman_graph
from repro.resilience import Checkpointer, RunBudget


def counting_clock(start: int = 0):
    counter = itertools.count(start)
    return lambda: next(counter)


@pytest.fixture(scope="module")
def graph():
    return relaxed_caveman_graph(8, 7, 0.15, seed=5)


@pytest.fixture(scope="module")
def index(graph):
    return SCTIndex.build(graph)


class TestGenerousBudgetIsIdentical:
    """An armed but never-exhausted budget must not perturb any result."""

    def test_sctl_star(self, index):
        plain = sctl_star(index, 4, iterations=6)
        budgeted = sctl_star(
            index, 4, iterations=6, budget=RunBudget(wall_seconds=1e9)
        )
        assert type(budgeted) is type(plain)
        assert budgeted.vertices == plain.vertices
        assert budgeted.stats["weights"] == plain.stats["weights"]
        assert budgeted.upper_bound == plain.upper_bound

    def test_sctl(self, index):
        plain = sctl(index, 4, iterations=5)
        budgeted = sctl(index, 4, iterations=5, budget=RunBudget(wall_seconds=1e9))
        assert budgeted.vertices == plain.vertices
        assert budgeted.stats["weights"] == plain.stats["weights"]

    def test_sample(self, index):
        plain = sctl_star_sample(index, 4, sample_size=300, seed=3)
        budgeted = sctl_star_sample(
            index, 4, sample_size=300, seed=3, budget=RunBudget(wall_seconds=1e9)
        )
        assert budgeted.vertices == plain.vertices
        assert budgeted.clique_count == plain.clique_count

    def test_exact(self, graph, index):
        plain = sctl_star_exact(graph, 4, index=index, sample_size=300)
        budgeted = sctl_star_exact(
            graph, 4, index=index, sample_size=300,
            budget=RunBudget(wall_seconds=1e9),
        )
        assert budgeted.exact and plain.exact
        assert budgeted.vertices == plain.vertices
        assert budgeted.density_fraction == plain.density_fraction

    def test_build(self, graph, tmp_path):
        plain = SCTIndex.build(graph)
        budgeted = SCTIndex.build(graph, budget=RunBudget(wall_seconds=1e9))
        a, b = tmp_path / "a.sct", tmp_path / "b.sct"
        plain.save(a)
        budgeted.save(b)
        assert a.read_bytes() == b.read_bytes()


class TestSctlStarResumeParity:
    @pytest.mark.parametrize("stop_after", [1, 2, 4])
    def test_interrupt_then_resume_matches_uninterrupted(
        self, index, tmp_path, stop_after
    ):
        total = 6
        full = sctl_star(index, 4, iterations=total)
        ckpt = Checkpointer(tmp_path / str(stop_after), interval_seconds=0)

        part = sctl_star(
            index, 4, iterations=total,
            budget=RunBudget(max_iterations=stop_after), checkpoint=ckpt,
        )
        assert isinstance(part, PartialResult)
        assert part.valid
        assert part.iterations == stop_after
        assert part.reason == "max_iterations"

        resumed = sctl_star(index, 4, iterations=total, checkpoint=ckpt, resume=True)
        assert not resumed.is_partial
        assert resumed.stats["weights"] == full.stats["weights"]
        assert resumed.density_fraction == full.density_fraction
        assert resumed.upper_bound == full.upper_bound
        assert resumed.vertices == full.vertices
        # the completed run must clean its snapshot up
        assert not ckpt.has("sctl-star-weights")

    def test_double_interrupt_then_resume(self, index, tmp_path):
        """Two successive interruptions still land on the exact answer."""
        total = 6
        full = sctl_star(index, 4, iterations=total)
        ckpt = Checkpointer(tmp_path, interval_seconds=0)
        sctl_star(
            index, 4, iterations=total,
            budget=RunBudget(max_iterations=2), checkpoint=ckpt,
        )
        second = sctl_star(
            index, 4, iterations=total,
            budget=RunBudget(max_iterations=2), checkpoint=ckpt, resume=True,
        )
        assert second.is_partial and second.iterations == 4
        final = sctl_star(index, 4, iterations=total, checkpoint=ckpt, resume=True)
        assert final.stats["weights"] == full.stats["weights"]
        assert final.density_fraction == full.density_fraction

    def test_mid_iteration_deadline_rolls_back_to_boundary(self, index, tmp_path):
        """A deadline tripping mid-sweep reports the last completed round."""
        full3 = sctl_star(index, 4, iterations=3)
        # the counting clock exhausts the deadline partway through a sweep
        # (each sweep burns ~41 polls: 40 paths + the round boundary)
        budget = RunBudget(wall_seconds=150, clock=counting_clock())
        part = sctl_star(index, 4, iterations=10, budget=budget)
        assert part.is_partial and part.valid
        completed = part.iterations
        assert 0 < completed < 10
        reference = sctl_star(index, 4, iterations=completed)
        assert part.stats["weights"] == reference.stats["weights"]
        if completed >= 3:
            assert full3.density_fraction <= part.density_fraction

    def test_checkpoint_mismatch_refuses_resume(self, index, tmp_path):
        ckpt = Checkpointer(tmp_path, interval_seconds=0)
        sctl_star(
            index, 4, iterations=6,
            budget=RunBudget(max_iterations=2), checkpoint=ckpt,
        )
        with pytest.raises(CheckpointError):
            sctl_star(index, 5, iterations=6, checkpoint=ckpt, resume=True)


class TestSctlResumeParity:
    @pytest.mark.parametrize("stop_after", [1, 3])
    def test_interrupt_then_resume(self, index, tmp_path, stop_after):
        total = 5
        full = sctl(index, 4, iterations=total)
        ckpt = Checkpointer(tmp_path / str(stop_after), interval_seconds=0)
        part = sctl(
            index, 4, iterations=total,
            budget=RunBudget(max_iterations=stop_after), checkpoint=ckpt,
        )
        assert part.is_partial and part.valid
        resumed = sctl(index, 4, iterations=total, checkpoint=ckpt, resume=True)
        assert resumed.stats["weights"] == full.stats["weights"]
        assert resumed.density_fraction == full.density_fraction
        assert resumed.upper_bound == full.upper_bound


class TestIndexBuildResume:
    def test_interrupted_build_resumes_to_identical_index(self, graph, tmp_path):
        reference = SCTIndex.build(graph)
        ckpt = Checkpointer(tmp_path, interval_seconds=0)
        # a counting clock trips the deadline after a few per-root polls
        budget = RunBudget(wall_seconds=5, clock=counting_clock())
        with pytest.raises(BudgetExhausted):
            SCTIndex.build(graph, budget=budget, checkpoint=ckpt)
        assert ckpt.has("sct-build")

        resumed = SCTIndex.build(graph, checkpoint=ckpt, resume=True)
        a, b = tmp_path / "ref.sct", tmp_path / "res.sct"
        reference.save(a)
        resumed.save(b)
        assert a.read_bytes() == b.read_bytes()
        assert not ckpt.has("sct-build")  # cleared after completion

    def test_build_checkpoint_mismatch_refuses_resume(self, graph, tmp_path):
        other = relaxed_caveman_graph(4, 5, 0.1, seed=9)
        ckpt = Checkpointer(tmp_path, interval_seconds=0)
        budget = RunBudget(wall_seconds=3, clock=counting_clock())
        with pytest.raises(BudgetExhausted):
            SCTIndex.build(graph, budget=budget, checkpoint=ckpt)
        with pytest.raises(CheckpointError):
            SCTIndex.build(other, checkpoint=ckpt, resume=True)


class TestExactDegradation:
    def test_partial_then_full_rerun_matches(self, graph, index):
        baseline = sctl_star_exact(graph, 4, index=index, sample_size=300)
        budget = RunBudget(wall_seconds=40, clock=counting_clock())
        part = sctl_star_exact(
            graph, 4, index=index, sample_size=300, budget=budget
        )
        assert part.is_partial
        assert not part.exact
        assert part.valid
        # the degraded answer is achieved, so it can never beat the optimum
        assert part.density_fraction <= baseline.density_fraction
        rerun = sctl_star_exact(graph, 4, index=index, sample_size=300)
        assert rerun.density_fraction == baseline.density_fraction

    def test_facade_partial_flow(self, graph):
        result = densest_subgraph(
            graph, 4, method="sctl*",
            budget=RunBudget(wall_seconds=1, clock=counting_clock()),
        )
        assert result.is_partial
        assert not result.valid  # exhausted inside the index build
        assert result.stage == "index/build"

    def test_facade_resume_through_kwargs(self, graph, tmp_path):
        full = densest_subgraph(graph, 4, method="sctl*")
        ckpt = Checkpointer(tmp_path, interval_seconds=0)
        part = densest_subgraph(
            graph, 4, method="sctl*",
            budget=RunBudget(max_iterations=3), checkpoint=ckpt,
        )
        assert part.is_partial and part.valid
        resumed = densest_subgraph(
            graph, 4, method="sctl*", checkpoint=ckpt, resume=True
        )
        assert resumed.density_fraction == full.density_fraction
        assert resumed.vertices == full.vertices
