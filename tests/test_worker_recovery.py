"""Worker-crash recovery in the path-shard engine.

A SIGKILLed pool worker silently takes its chunk with it —
``multiprocessing.Pool`` never resubmits a lost task, so an unwatched
``imap`` hangs forever.  These tests inject *real* SIGKILLs (via the
``REPRO_FAULT_WORKER_KILL`` marker-file hook, and directly with
``os.kill``) and pin the recovery contract: the sweep completes, the
results are byte-identical to an uncrashed serial run, the recovery is
visible in the metrics, and no ``/dev/shm`` segment outlives the engine.
"""

import os
import signal
import threading
import time

import pytest

from repro import MetricsRecorder, ParallelConfig
from repro.core import SCTIndex
from repro.graph import relaxed_caveman_graph
from repro.parallel import engine as engine_mod
from repro.parallel.engine import PathShardEngine

K = 4


@pytest.fixture(scope="module")
def index():
    return SCTIndex.build(relaxed_caveman_graph(8, 6, 0.1, seed=7))


@pytest.fixture()
def crash_marker(tmp_path, monkeypatch):
    """Arm the chaos hook; returns a function writing the crash count."""
    marker = tmp_path / "kill.marker"
    monkeypatch.setenv(engine_mod._FAULT_ENV, str(marker))

    def arm(crashes: int = 1) -> str:
        marker.write_text(str(crashes))
        return str(marker)

    return arm


def serial_paths(index, k=K):
    return [(p.holds, p.pivots) for p in index.iter_paths(k)]


def engine_paths(engine, k=K):
    return [pair for chunk in engine.map("paths", k) for pair in chunk]


def shm_path(engine) -> str:
    name = engine._ensure_shm().name
    return os.path.join("/dev/shm", name.lstrip("/"))


class TestCrashRecovery:
    def test_injected_crash_rebuilds_pool_and_matches_serial(
        self, index, crash_marker
    ):
        crash_marker(1)
        recorder = MetricsRecorder()
        config = ParallelConfig(workers=2, max_crash_retries=2)
        with PathShardEngine(index, config, recorder=recorder) as engine:
            assert engine_paths(engine) == serial_paths(index)
        counters = recorder.snapshot()["counters"]
        assert counters.get("parallel/worker_crashes", 0) >= 1
        assert counters.get("parallel/pool_rebuilds", 0) >= 1
        assert "parallel/serial_fallback" not in counters

    def test_zero_retries_degrades_to_serial_fallback(
        self, index, crash_marker
    ):
        crash_marker(1)
        recorder = MetricsRecorder()
        config = ParallelConfig(workers=2, max_crash_retries=0)
        with PathShardEngine(index, config, recorder=recorder) as engine:
            assert engine_paths(engine) == serial_paths(index)
        counters = recorder.snapshot()["counters"]
        assert counters.get("parallel/worker_crashes", 0) >= 1
        assert counters.get("parallel/serial_fallback", 0) == 1
        assert "parallel/pool_rebuilds" not in counters

    def test_repeated_crashes_keep_the_bookkeeping_consistent(
        self, index, crash_marker
    ):
        # enough injected crashes to burn every rebuild.  Exact counts
        # are racy by design (pool.terminate can reap a worker holding a
        # freshly-claimed marker), so assert the engine's invariants:
        # every crash is either a rebuild or THE one serial fallback,
        # and rebuilds never exceed the retry budget.
        crash_marker(5)
        recorder = MetricsRecorder()
        config = ParallelConfig(workers=2, max_crash_retries=1)
        with PathShardEngine(index, config, recorder=recorder) as engine:
            assert engine_paths(engine) == serial_paths(index)
        counters = recorder.snapshot()["counters"]
        crashes = counters.get("parallel/worker_crashes", 0)
        rebuilds = counters.get("parallel/pool_rebuilds", 0)
        fallback = counters.get("parallel/serial_fallback", 0)
        assert crashes >= 1
        assert crashes == rebuilds + fallback
        assert rebuilds <= 1  # max_crash_retries
        assert fallback <= 1

    def test_crashed_sweep_count_matches_uncrashed(self, index, crash_marker):
        with PathShardEngine(index, ParallelConfig(workers=2)) as engine:
            expected = engine.count_cliques(K)
        crash_marker(1)
        config = ParallelConfig(workers=2, max_crash_retries=2)
        with PathShardEngine(index, config) as engine:
            assert engine.count_cliques(K) == expected

    def test_no_marker_means_no_behaviour_change(self, index, monkeypatch):
        monkeypatch.delenv(engine_mod._FAULT_ENV, raising=False)
        recorder = MetricsRecorder()
        config = ParallelConfig(workers=2, max_crash_retries=2)
        with PathShardEngine(index, config, recorder=recorder) as engine:
            assert engine_paths(engine) == serial_paths(index)
        assert "parallel/worker_crashes" not in recorder.snapshot()["counters"]


class TestShmHygiene:
    @pytest.mark.parametrize("workers", (1, 2))
    def test_sigkilled_worker_leaves_no_shm_after_close(self, index, workers):
        """Satellite (d): SIGKILL a live pool worker mid-query; the
        broadcast block must not survive ``close()`` regardless."""
        config = ParallelConfig(workers=workers, max_crash_retries=2)
        engine = PathShardEngine(index, config)
        try:
            # kill mid-sweep: pull the first chunk off the wire, murder a
            # worker, then demand the rest — the stream must still equal
            # the serial byte stream
            stream = engine.map("paths", K)
            collected = [next(stream)]
            victim = sorted(engine._worker_pids())[0]
            os.kill(victim, signal.SIGKILL)
            collected.extend(stream)
            assert [p for c in collected for p in c] == serial_paths(index)
            segment = shm_path(engine)
            assert os.path.exists(segment)
            # and a fresh sweep on the (possibly rebuilt) engine works
            assert engine_paths(engine) == serial_paths(index)
        finally:
            engine.close()
        assert not os.path.exists(segment)
        assert engine._shm is None

    def test_sigkill_between_sweeps_discards_the_suspect_pool(self, index):
        """An idle worker killed between sweeps may have died holding the
        task queue's reader lock; the engine must rebuild, not reuse."""
        config = ParallelConfig(workers=2, max_crash_retries=2)
        recorder = MetricsRecorder()
        engine = PathShardEngine(index, config, recorder=recorder)
        try:
            assert engine_paths(engine) == serial_paths(index)
            victim = sorted(engine._worker_pids())[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 10
            while victim in engine._worker_pids():
                assert time.monotonic() < deadline, "victim never reaped"
                time.sleep(0.01)
            assert engine_paths(engine) == serial_paths(index)
        finally:
            engine.close()
        counters = recorder.snapshot()["counters"]
        assert counters.get("parallel/worker_crashes", 0) >= 1
        assert counters.get("parallel/pool_rebuilds", 0) >= 1

    def test_close_unregisters_the_atexit_tracking(self, index):
        engine = PathShardEngine(index, ParallelConfig(workers=2))
        name = engine._ensure_shm().name
        assert name in engine_mod._LIVE_SHM
        engine.close()
        assert name not in engine_mod._LIVE_SHM

    def test_release_all_shm_sweeps_stragglers(self, index):
        engine = PathShardEngine(index, ParallelConfig(workers=2))
        segment = shm_path(engine)
        engine._teardown_pool()
        engine._finalizer.detach()  # simulate a finalizer that never ran
        engine_mod._release_all_shm()
        assert not os.path.exists(segment)
        assert not engine_mod._LIVE_SHM


class TestStartMethodSafety:
    """Forking a multithreaded process clones every lock in whatever
    state other threads hold it — a worker forked from an HTTP handler
    thread can deadlock in bootstrap before reaching the task loop, and
    (having also cloned the daemon's SIGTERM handler) shrug off
    ``Pool.terminate()`` forever.  The default context must therefore
    refuse to fork once other threads exist."""

    def test_threaded_process_defaults_to_spawn(self):
        release = threading.Event()
        spectator = threading.Thread(target=release.wait, daemon=True)
        spectator.start()
        try:
            ctx = ParallelConfig(workers=2).context()
            assert ctx.get_start_method() == "spawn"
        finally:
            release.set()
            spectator.join()

    def test_single_threaded_process_defaults_to_fork(self):
        if threading.active_count() != 1:
            pytest.skip("test runner already has background threads")
        ctx = ParallelConfig(workers=2).context()
        assert ctx.get_start_method() == "fork"

    def test_explicit_start_method_is_honoured(self):
        release = threading.Event()
        spectator = threading.Thread(target=release.wait, daemon=True)
        spectator.start()
        try:
            ctx = ParallelConfig(workers=2, start_method="fork").context()
            assert ctx.get_start_method() == "fork"
        finally:
            release.set()
            spectator.join()

    def test_spawn_sweep_matches_serial(self, index):
        # end-to-end parity under the start method the service daemon
        # will actually get
        config = ParallelConfig(workers=2, start_method="spawn")
        with PathShardEngine(index, config) as engine:
            assert engine_paths(engine) == serial_paths(index)


class TestFaultMarkerSemantics:
    def test_marker_is_consumed_exactly_once(self, tmp_path):
        marker = tmp_path / "kill.marker"
        marker.write_text("1")
        # claim semantics are pure renames; verify from the parent side
        # without actually dying
        claimed = str(marker) + ".claim"
        os.rename(str(marker), claimed)
        assert not marker.exists()
        with pytest.raises(OSError):
            os.rename(str(marker), claimed + "2")

    def test_multi_crash_marker_still_reaches_parity(
        self, index, crash_marker
    ):
        crash_marker(2)
        recorder = MetricsRecorder()
        config = ParallelConfig(workers=2, max_crash_retries=3)
        with PathShardEngine(index, config, recorder=recorder) as engine:
            assert engine_paths(engine) == serial_paths(index)
        assert (
            recorder.snapshot()["counters"].get("parallel/worker_crashes", 0)
            >= 1
        )
