"""Higher-level clique counting helpers."""

import pytest

from repro.cliques import (
    engagement_counts,
    k_clique_density,
    per_vertex_counts_naive,
    subgraph_density,
    subgraph_k_clique_count,
)
from repro.graph import Graph, gnp_graph


class TestDensityHelpers:
    def test_whole_graph_density(self):
        g = Graph.complete(6)
        assert k_clique_density(g, 3) == 20 / 6

    def test_empty_graph_density_zero(self):
        assert k_clique_density(Graph(0), 3) == 0.0

    def test_subgraph_count(self):
        g = Graph.complete(6)
        assert subgraph_k_clique_count(g, [0, 1, 2, 3], 3) == 4

    def test_subgraph_count_too_small(self):
        g = Graph.complete(6)
        assert subgraph_k_clique_count(g, [0, 1], 3) == 0

    def test_subgraph_density(self):
        g = Graph.complete(6)
        assert subgraph_density(g, [0, 1, 2], 3) == pytest.approx(1 / 3)

    def test_subgraph_density_empty(self):
        assert subgraph_density(Graph(5), [], 3) == 0.0

    def test_engagement_matches_naive(self):
        g = gnp_graph(12, 0.5, seed=2)
        assert engagement_counts(g, 3) == per_vertex_counts_naive(g, 3)
