"""The command-line interface."""

import pytest

from repro.cli import main
from repro.graph import gnp_graph, write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "graph.txt"
    write_edge_list(gnp_graph(30, 0.35, seed=1), path)
    return str(path)


class TestDatasetsCommand:
    def test_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "email" in out
        assert "friendster" in out
        assert "Friendster" in out


class TestBuildIndex:
    def test_build_and_save(self, graph_file, tmp_path, capsys):
        out_file = str(tmp_path / "g.sct")
        assert main(["build-index", graph_file, "-o", out_file]) == 0
        assert "built SCTIndex" in capsys.readouterr().out
        from repro.core import SCTIndex

        index = SCTIndex.load(out_file)
        assert index.n_vertices == 30

    def test_build_partial(self, graph_file, tmp_path, capsys):
        out_file = str(tmp_path / "g.sct")
        assert main(
            ["build-index", graph_file, "-o", out_file, "--threshold", "4"]
        ) == 0
        from repro.core import SCTIndex

        assert SCTIndex.load(out_file).threshold == 4

    def test_dataset_prefix(self, tmp_path):
        out_file = str(tmp_path / "email.sct")
        assert main(["build-index", "dataset:pokec", "-o", out_file]) == 0

    def test_missing_file(self, capsys):
        assert main(["build-index", "/nonexistent", "-o", "/tmp/x.sct"]) == 1
        assert "error" in capsys.readouterr().err


class TestQuery:
    def test_query_default_method(self, graph_file, capsys):
        assert main(["query", graph_file, "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "SCTL*" in out
        assert "query time" in out

    def test_query_with_index(self, graph_file, tmp_path, capsys):
        index_file = str(tmp_path / "g.sct")
        main(["build-index", graph_file, "-o", index_file])
        capsys.readouterr()
        assert main(
            ["query", graph_file, "-k", "3", "--index", index_file]
        ) == 0

    def test_query_exact(self, graph_file, capsys):
        assert main(
            ["query", graph_file, "-k", "3", "--method", "sctl*-exact"]
        ) == 0
        assert "exact" in capsys.readouterr().out

    def test_query_show_vertices(self, graph_file, capsys):
        assert main(["query", graph_file, "-k", "3", "--show-vertices"]) == 0
        assert "vertices: [" in capsys.readouterr().out

    def test_query_unknown_method(self, graph_file, capsys):
        assert main(["query", graph_file, "-k", "3", "--method", "nope"]) == 1
        assert "error" in capsys.readouterr().err

    def test_index_graph_mismatch(self, graph_file, tmp_path, capsys):
        other = tmp_path / "other.txt"
        write_edge_list(gnp_graph(10, 0.4, seed=2), other)
        index_file = str(tmp_path / "other.sct")
        main(["build-index", str(other), "-o", index_file])
        capsys.readouterr()
        assert main(
            ["query", graph_file, "-k", "3", "--index", index_file]
        ) == 2


class TestProfile:
    def test_profile_prints_all_k(self, graph_file, capsys):
        assert main(["profile", graph_file]) == 0
        out = capsys.readouterr().out
        assert "density profile" in out
        assert "best k by density" in out


class TestObservabilityFlags:
    def test_query_metrics_table(self, graph_file, capsys):
        assert main(["query", graph_file, "-k", "3", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "counter" in out
        assert "refine/iterations" in out
        assert "span" in out

    def test_query_metrics_to_file(self, graph_file, tmp_path, capsys):
        import json

        from repro.obs import validate_metrics

        metrics_file = tmp_path / "metrics.json"
        assert main(
            ["query", graph_file, "-k", "3", "--metrics", str(metrics_file)]
        ) == 0
        payload = json.loads(metrics_file.read_text())
        assert validate_metrics(payload) == []
        assert payload["counters"]["refine/iterations"] > 0

    def test_query_trace_is_valid_jsonl(self, graph_file, tmp_path):
        from repro.obs import validate_trace_lines

        trace_file = tmp_path / "trace.jsonl"
        assert main(
            [
                "query", graph_file, "-k", "3",
                "--method", "sctl*-exact", "--trace", str(trace_file),
            ]
        ) == 0
        lines = trace_file.read_text().splitlines()
        assert validate_trace_lines(lines) == []

    def test_build_index_metrics(self, graph_file, tmp_path, capsys):
        out_file = str(tmp_path / "g.sct")
        assert main(
            ["build-index", graph_file, "-o", out_file, "--metrics"]
        ) == 0
        out = capsys.readouterr().out
        assert "build/nodes" in out

    def test_profile_metrics(self, graph_file, capsys):
        assert main(["profile", graph_file, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "profile/k/" in out

    def test_no_flags_prints_no_metrics(self, graph_file, capsys):
        assert main(["query", graph_file, "-k", "3"]) == 0
        assert "refine/iterations" not in capsys.readouterr().out
