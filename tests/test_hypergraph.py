"""The hypergraph substrate and its three densest solvers."""

from fractions import Fraction

import pytest

from repro.cliques import densest_subgraph_bruteforce
from repro.errors import GraphError
from repro.graph import Graph, gnp_graph
from repro.hypergraph import (
    Hypergraph,
    exact_densest,
    lp_densest_value,
    peel_densest,
)


class TestContainer:
    def test_basic_counts(self):
        h = Hypergraph(5, [(0, 1, 2), (2, 3), (2, 3)])
        assert h.n == 5
        assert h.m == 3
        assert h.degree(2) == 3
        assert h.degree(4) == 0
        assert h.rank() == 3

    def test_rejects_bad_edges(self):
        with pytest.raises(GraphError):
            Hypergraph(3, [(0, 0)])
        with pytest.raises(GraphError):
            Hypergraph(3, [(0, 5)])
        with pytest.raises(GraphError):
            Hypergraph(3, [()])

    def test_density_and_inside(self):
        h = Hypergraph(4, [(0, 1, 2), (1, 2, 3)])
        assert h.edges_inside([0, 1, 2]) == 1
        assert h.density([0, 1, 2]) == Fraction(1, 3)
        assert h.density([]) == 0

    def test_restriction(self):
        h = Hypergraph(4, [(0, 1, 2), (1, 2, 3)])
        restricted = h.restricted_to([0, 1, 2])
        assert restricted.m == 1

    def test_from_graph_cliques(self):
        g = Graph.complete(4)
        h = Hypergraph.from_graph_cliques(g, 3)
        assert h.m == 4
        assert h.rank() == 3

    def test_support(self):
        h = Hypergraph(5, [(1, 2)])
        assert h.vertex_support() == [1, 2]


class TestPeeling:
    def test_empty(self):
        assert peel_densest(Hypergraph(3)) == ([], Fraction(0))

    def test_finds_dense_core(self):
        # 4 hyperedges packed on {0,1,2}, singleton-ish elsewhere
        h = Hypergraph(6, [(0, 1, 2)] * 4 + [(3, 4), (4, 5)])
        chosen, density = peel_densest(h)
        assert set(chosen) == {0, 1, 2}
        assert density == Fraction(4, 3)

    @pytest.mark.parametrize("seed", range(5))
    def test_one_over_rank_guarantee(self, seed):
        g = gnp_graph(11, 0.5, seed=seed)
        h = Hypergraph.from_graph_cliques(g, 3)
        if h.m == 0:
            pytest.skip("no triangles")
        _, optimal = exact_densest(h)
        _, peeled = peel_densest(h)
        assert peeled >= optimal / 3
        assert peeled <= optimal


class TestThreeWayAgreement:
    """Flow, LP and brute force must agree on the optimum density."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [2, 3])
    def test_flow_equals_bruteforce(self, seed, k):
        g = gnp_graph(10, 0.5, seed=seed)
        h = Hypergraph.from_graph_cliques(g, k)
        _, flow_density = exact_densest(h)
        _, expected = densest_subgraph_bruteforce(g, k)
        assert float(flow_density) == pytest.approx(expected)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [2, 3])
    def test_lp_equals_flow(self, seed, k):
        pytest.importorskip("scipy")
        g = gnp_graph(10, 0.5, seed=seed)
        h = Hypergraph.from_graph_cliques(g, k)
        if h.m == 0:
            pytest.skip("no hyperedges")
        _, flow_density = exact_densest(h)
        assert lp_densest_value(h) == pytest.approx(float(flow_density), abs=1e-7)

    def test_lp_on_mixed_rank_hypergraph(self):
        pytest.importorskip("scipy")
        # hyperedges of different sizes — beyond what the clique view makes
        h = Hypergraph(6, [(0, 1), (0, 1, 2), (0, 1, 2, 3), (4, 5)])
        _, flow_density = exact_densest(h)
        assert lp_densest_value(h) == pytest.approx(float(flow_density), abs=1e-7)
        assert flow_density == Fraction(3, 4)

    def test_lp_empty(self):
        pytest.importorskip("scipy")
        assert lp_densest_value(Hypergraph(3)) == 0.0
