"""Unit tests for repro.resilience.faults and the chaos sweep harness."""

import pytest

from repro.core import SCTIndex, sctl_star
from repro.core.density import PartialResult
from repro.graph import relaxed_caveman_graph
from repro.obs import MetricsRecorder
from repro.resilience import (
    PIPELINE_STAGES,
    Fault,
    FaultInjected,
    FaultPlan,
    RunBudget,
)
from repro.resilience.chaos import run_sweep


@pytest.fixture(scope="module")
def graph():
    return relaxed_caveman_graph(6, 6, 0.1, seed=3)


@pytest.fixture(scope="module")
def index(graph):
    return SCTIndex.build(graph)


class TestFaultMatching:
    def test_exact_and_prefix_match(self):
        fault = Fault("refine/iteration")
        assert fault.matches("refine/iteration")
        assert fault.matches("refine/iteration/3")
        assert not fault.matches("refine/iterationX")
        assert not fault.matches("refine")

    def test_fires_on_requested_hit_only(self):
        fault = Fault("stage", hit=3)
        fault.fire("stage", "enter")
        fault.fire("stage", "enter")
        with pytest.raises(FaultInjected):
            fault.fire("stage", "enter")
        fault.fire("stage", "enter")  # spent: never fires again

    def test_respects_when(self):
        fault = Fault("stage", when="exit")
        fault.fire("stage", "enter")  # wrong boundary: ignored
        with pytest.raises(FaultInjected):
            fault.fire("stage", "exit")

    def test_cancel_requires_budget(self):
        with pytest.raises(ValueError):
            Fault("stage", action="cancel").fire("stage", "enter")

    def test_cancel_cancels_budget(self):
        budget = RunBudget()
        Fault("stage", action="cancel", budget=budget).fire("stage", "enter")
        assert budget.cancelled
        assert "stage" in budget.cancel_reason


class TestFaultPlan:
    def test_raising_plan_fires_through_recorder_span(self):
        plan = FaultPlan.raising("index/build")
        recorder = plan.recorder()
        with pytest.raises(FaultInjected):
            with recorder.span("index/build"):
                pass
        # the trigger is logged even though the fault raised
        assert plan.triggered == [("index/build", "raise", "enter")]

    def test_unmatched_spans_pass_through(self):
        plan = FaultPlan.raising("index/build")
        recorder = plan.recorder()
        with recorder.span("sample/draw"):
            pass
        assert plan.triggered == []

    def test_exit_fault_skipped_when_span_raises(self):
        # exit boundaries model "crash after the stage finished" — a span
        # that failed on its own never reaches that boundary
        plan = FaultPlan.raising("stage", when="exit")
        recorder = plan.recorder()
        with pytest.raises(RuntimeError):
            with recorder.span("stage"):
                raise RuntimeError("inner failure")
        assert plan.triggered == []

    def test_metrics_delegate_to_inner(self):
        inner = MetricsRecorder()
        plan = FaultPlan([])
        recorder = plan.recorder(inner)
        assert recorder.enabled
        recorder.counter("x", 2)
        recorder.gauge("g", 1.5)
        with recorder.span("s"):
            pass
        assert inner.counters["x"] == 2
        assert inner.gauges["g"] == 1.5

    def test_cancel_plan_degrades_sctl_star(self, index):
        budget = RunBudget()
        plan = FaultPlan.cancelling("refine/iteration/2", budget)
        result = sctl_star(
            index, 3, iterations=5, recorder=plan.recorder(), budget=budget
        )
        assert plan.triggered
        assert isinstance(result, PartialResult)
        assert result.valid
        assert result.iterations == 1
        assert result.reason == "cancelled"

    def test_delay_plan_fires_without_changing_result(self, index):
        plan = FaultPlan.delaying("refine/iteration/1", seconds=0.0)
        clean = sctl_star(index, 3, iterations=3)
        delayed = sctl_star(index, 3, iterations=3, recorder=plan.recorder())
        assert plan.triggered
        assert delayed.vertices == clean.vertices
        assert delayed.stats["weights"] == clean.stats["weights"]


class TestChaosSweep:
    def test_sweep_has_no_failures(self, graph):
        rows = run_sweep(graph, 3, method="sctl*-exact", sample_size=200)
        assert rows, "sweep produced no rows"
        failures = [r for r in rows if r[2] == "FAIL"]
        assert not failures, f"chaos sweep failed: {failures}"
        injected = [r for r in rows if r[2] == "ok"]
        # the exact pipeline must actually reach (nearly) every stage
        assert len(injected) >= 2 * (len(PIPELINE_STAGES) - 2)
