"""SCTL (Algorithm 2): correctness, convergence, bounds."""

import pytest

from repro.cliques import count_k_cliques_naive, densest_subgraph_bruteforce
from repro.core import SCTIndex, sctl
from repro.errors import InvalidParameterError
from repro.graph import Graph, gnp_graph


class TestBasics:
    def test_empty_graph(self):
        result = sctl(SCTIndex.build(Graph(5)), 3)
        assert result.vertices == []
        assert result.density == 0.0
        assert result.algorithm == "SCTL"

    def test_invalid_iterations(self):
        with pytest.raises(InvalidParameterError):
            sctl(SCTIndex.build(Graph.complete(4)), 3, iterations=0)

    def test_complete_graph_optimal_immediately(self):
        g = Graph.complete(6)
        result = sctl(SCTIndex.build(g), 3, iterations=2)
        assert result.vertices == list(range(6))
        assert result.density == pytest.approx(20 / 6)

    def test_finds_dense_block(self, k6_plus_k4):
        result = sctl(SCTIndex.build(k6_plus_k4), 3, iterations=10)
        assert result.vertices == [0, 1, 2, 3, 4, 5]
        assert result.density == pytest.approx(20 / 6)

    def test_reported_count_is_true_count(self, small_random):
        result = sctl(SCTIndex.build(small_random), 3, iterations=5)
        sub, _ = small_random.induced_subgraph(result.vertices)
        assert count_k_cliques_naive(sub, 3) == result.clique_count


class TestGuarantees:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [3, 4])
    def test_density_bounded_by_optimum(self, seed, k):
        g = gnp_graph(11, 0.55, seed=seed)
        index = SCTIndex.build(g)
        if index.max_clique_size < k:
            pytest.skip("no k-clique in this instance")
        _, optimal = densest_subgraph_bruteforce(g, k)
        result = sctl(index, k, iterations=15)
        assert result.density <= optimal + 1e-9

    @pytest.mark.parametrize("seed", range(6))
    def test_upper_bound_is_valid(self, seed):
        g = gnp_graph(11, 0.55, seed=seed)
        index = SCTIndex.build(g)
        if index.max_clique_size < 3:
            pytest.skip("no triangle")
        _, optimal = densest_subgraph_bruteforce(g, 3)
        result = sctl(index, 3, iterations=15)
        assert result.upper_bound >= optimal - 1e-9

    def test_more_iterations_do_not_hurt(self, caveman):
        index = SCTIndex.build(caveman)
        short = sctl(index, 3, iterations=2)
        long = sctl(index, 3, iterations=40)
        assert long.density >= short.density - 1e-9

    def test_near_optimal_after_enough_iterations(self):
        g = gnp_graph(12, 0.55, seed=3)
        index = SCTIndex.build(g)
        _, optimal = densest_subgraph_bruteforce(g, 3)
        result = sctl(index, 3, iterations=60)
        assert result.density >= 0.9 * optimal


class TestStats:
    def test_stats_contents(self, small_random):
        index = SCTIndex.build(small_random)
        result = sctl(index, 3, iterations=4)
        assert result.iterations == 4
        assert len(result.stats["weights"]) == small_random.n
        assert result.stats["cliques_per_iteration"] == count_k_cliques_naive(
            small_random, 3
        )
        # total weight distributed = T * number of cliques
        assert sum(result.stats["weights"]) == 4 * result.stats["cliques_per_iteration"]
