"""Unit tests for edge-list reading and writing."""

import pytest

from repro.errors import DatasetError, EdgeListParseError, GraphError
from repro.graph import Graph, gnp_graph, read_edge_list, write_edge_list
from repro.graph.io import parse_edge_lines


class TestParse:
    def test_comments_and_blanks_skipped(self):
        lines = ["# header", "", "% note", "1 2", "2 3"]
        assert parse_edge_lines(lines) == [("1", "2"), ("2", "3")]

    def test_self_loops_dropped(self):
        assert parse_edge_lines(["5 5", "1 2"]) == [("1", "2")]

    def test_extra_columns_ignored(self):
        assert parse_edge_lines(["1 2 0.5 ts"]) == [("1", "2")]

    def test_malformed_line_raises(self):
        with pytest.raises(GraphError):
            parse_edge_lines(["justone"])


class TestParseErrors:
    def test_error_carries_line_number_and_text(self):
        lines = ["# header", "1 2", "broken"]
        with pytest.raises(EdgeListParseError) as excinfo:
            parse_edge_lines(lines)
        assert excinfo.value.lineno == 3
        assert excinfo.value.text == "broken"
        assert "line 3" in str(excinfo.value)
        assert "'broken'" in str(excinfo.value)

    def test_line_numbers_count_skipped_lines(self):
        # comments and blanks still advance the reported line number
        lines = ["", "# c", "%", "1 2", "", "oops"]
        with pytest.raises(EdgeListParseError) as excinfo:
            parse_edge_lines(lines)
        assert excinfo.value.lineno == 6

    def test_error_is_both_dataset_and_graph_error(self):
        # old callers catch GraphError, the dataset layer catches
        # DatasetError — the parse error satisfies both
        with pytest.raises(DatasetError):
            parse_edge_lines(["nope"])
        with pytest.raises(GraphError):
            parse_edge_lines(["nope"])

    def test_read_edge_list_names_the_file(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\nonlyone\n")
        with pytest.raises(EdgeListParseError) as excinfo:
            read_edge_list(path)
        assert excinfo.value.lineno == 2
        assert str(path) in str(excinfo.value)


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        g = gnp_graph(25, 0.3, seed=4)
        path = tmp_path / "graph.txt"
        write_edge_list(g, path, header="test graph")
        h = read_edge_list(path)
        assert h.n == g.n or h.n == len({v for e in g.edges() for v in e})
        assert h.m == g.m

    def test_read_preserves_structure(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# demo\na b\nb c\nc a\n")
        g = read_edge_list(path)
        assert g.n == 3
        assert g.m == 3
        assert g.is_clique(list(g.vertices()))

    def test_header_written(self, tmp_path):
        g = Graph(2, [(0, 1)])
        path = tmp_path / "h.txt"
        write_edge_list(g, path, header="hello\nworld")
        text = path.read_text()
        assert "# hello" in text
        assert "# world" in text
        assert "# n=2 m=1" in text
