"""Convergence tracking in SCTL."""

import pytest

from repro.core import SCTIndex, sctl
from repro.graph import gnp_graph


class TestTrackConvergence:
    @pytest.fixture(scope="class")
    def tracked(self):
        g = gnp_graph(14, 0.5, seed=6)
        index = SCTIndex.build(g)
        return sctl(index, 3, iterations=8, track_convergence=True)

    def test_histories_have_one_entry_per_iteration(self, tracked):
        assert len(tracked.stats["density_history"]) == 8
        assert len(tracked.stats["upper_bound_history"]) == 8

    def test_upper_bound_dominates_achieved(self, tracked):
        for density, upper in zip(
            tracked.stats["density_history"],
            tracked.stats["upper_bound_history"],
        ):
            assert upper >= density - 1e-9

    def test_final_history_matches_result(self, tracked):
        assert tracked.stats["density_history"][-1] == pytest.approx(tracked.density)
        assert tracked.stats["upper_bound_history"][-1] == pytest.approx(
            tracked.upper_bound
        )

    def test_upper_bound_tightens_overall(self, tracked):
        # the averaged bound max(r)/T generally tightens with T; individual
        # steps may wobble, the trend must not
        upper = tracked.stats["upper_bound_history"]
        assert upper[-1] <= upper[0] + 1e-9

    def test_untracked_run_has_no_histories(self):
        g = gnp_graph(10, 0.5, seed=1)
        result = sctl(SCTIndex.build(g), 3, iterations=3)
        assert "density_history" not in result.stats
