"""Statistical behaviour of the path-proportional clique sampler."""

import random
from collections import Counter

import pytest

from repro.core import SCTIndex, sample_k_cliques
from repro.core.sct import SCTPath
from repro.graph import gnp_graph, relaxed_caveman_graph


class TestAllocationExactness:
    @pytest.mark.parametrize("sigma", [1, 7, 50, 200])
    def test_sample_size_hit_exactly_when_feasible(self, sigma):
        g = gnp_graph(16, 0.5, seed=3)
        index = SCTIndex.build(g)
        paths = index.collect_paths(3)
        total = index.count_k_cliques(3)
        sample = sample_k_cliques(paths, 3, sigma, random.Random(0))
        assert len(sample) == min(sigma, total)

    def test_no_duplicates_across_paths(self):
        # uniqueness within a path is by construction; across paths it is
        # guaranteed because each clique belongs to exactly one path
        g = relaxed_caveman_graph(6, 6, 0.1, seed=2)
        index = SCTIndex.build(g)
        paths = index.collect_paths(3)
        sample = sample_k_cliques(paths, 3, 100, random.Random(5))
        keys = [tuple(sorted(c)) for c in sample]
        assert len(keys) == len(set(keys))


class TestUniformity:
    def test_within_path_sampling_is_roughly_uniform(self):
        """Sample single cliques from one path many times: every clique of
        the path should appear with comparable frequency."""
        path = SCTPath(holds=(0,), pivots=(1, 2, 3, 4, 5))
        k = 3
        total = path.clique_count(k)  # C(5,2) = 10
        counts = Counter()
        trials = 4000
        rng = random.Random(123)
        for _ in range(trials):
            (clique,) = sample_k_cliques([path], k, 1, rng)
            counts[clique] += 1
        assert len(counts) == total
        expected = trials / total
        for clique, seen in counts.items():
            assert abs(seen - expected) < 5 * (expected ** 0.5), clique

    def test_cross_path_allocation_tracks_clique_mass(self):
        """A path with 4x the cliques should receive ~4x the samples."""
        small = SCTPath(holds=(0,), pivots=(1, 2, 3))        # C(3,2) = 3
        big = SCTPath(holds=(10,), pivots=(11, 12, 13, 14, 15, 16))  # 15
        sample = sample_k_cliques([small, big], 3, 12, random.Random(9))
        from_big = sum(1 for c in sample if c[0] == 10)
        assert 8 <= from_big <= 11  # expected 10 of 12
