"""The clique flow network and the exact min-cut solver."""

from fractions import Fraction

import pytest

from repro.cliques import densest_subgraph_bruteforce, iter_k_cliques_naive
from repro.flow import (
    count_cliques_inside,
    exact_densest_from_cliques,
    find_denser_subgraph,
)
from repro.graph import Graph, gnp_graph


class TestCountInside:
    def test_counts_only_contained(self):
        cliques = [(0, 1, 2), (1, 2, 3)]
        assert count_cliques_inside(cliques, [0, 1, 2]) == 1
        assert count_cliques_inside(cliques, [0, 1, 2, 3]) == 2
        assert count_cliques_inside(cliques, [5]) == 0


class TestFindDenser:
    def test_none_when_no_cliques(self):
        assert find_denser_subgraph([], [0, 1], Fraction(1)) is None

    def test_finds_the_dense_block(self):
        g = Graph.complete(5)
        cliques = list(iter_k_cliques_naive(g, 3))
        denser = find_denser_subgraph(cliques, list(range(5)), Fraction(1, 2))
        assert denser is not None
        assert Fraction(count_cliques_inside(cliques, denser), len(denser)) > Fraction(1, 2)

    def test_none_at_optimum(self):
        g = Graph.complete(5)
        cliques = list(iter_k_cliques_naive(g, 3))
        optimum = Fraction(10, 5)
        assert find_denser_subgraph(cliques, list(range(5)), optimum) is None

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            find_denser_subgraph([(0, 1, 2)], [0, 1, 2], Fraction(-1))


class TestExactSolver:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_matches_bruteforce(self, seed, k):
        g = gnp_graph(10, 0.5, seed=seed)
        cliques = list(iter_k_cliques_naive(g, k))
        solution, density = exact_densest_from_cliques(cliques, list(g.vertices()))
        _, expected = densest_subgraph_bruteforce(g, k)
        assert float(density) == pytest.approx(expected)
        if cliques:
            assert count_cliques_inside(cliques, solution) == density * len(solution)

    def test_empty_inputs(self):
        assert exact_densest_from_cliques([], [0, 1]) == ([], Fraction(0))
        assert exact_densest_from_cliques([(0, 1)], []) == ([], Fraction(0))

    def test_warm_start_agrees(self):
        g = gnp_graph(11, 0.5, seed=3)
        cliques = list(iter_k_cliques_naive(g, 3))
        cold = exact_densest_from_cliques(cliques, list(g.vertices()))
        warm = exact_densest_from_cliques(
            cliques, list(g.vertices()), warm_start=[0, 1, 2]
        )
        assert cold[1] == warm[1]

    def test_k6_plus_k4(self, k6_plus_k4):
        cliques = list(iter_k_cliques_naive(k6_plus_k4, 3))
        solution, density = exact_densest_from_cliques(
            cliques, list(k6_plus_k4.vertices())
        )
        assert density == Fraction(20, 6)
        assert solution == [0, 1, 2, 3, 4, 5]
