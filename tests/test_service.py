"""The query daemon: caches, coalescing, budgets, drain, HTTP transport."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.service.server as server_mod
from repro import cli
from repro.errors import InvalidParameterError
from repro.obs.validate import validate_result
from repro.results import DenseSubgraphResult
from repro.service import (
    SERVICE_SCHEMA,
    LRUCache,
    ReproService,
    ServiceConfig,
    SingleFlight,
    make_server,
    parse_request,
)

DATASET = "email"


def make_service(**overrides) -> ReproService:
    kwargs = dict(cache_size=2, result_cache_size=8)
    kwargs.update(overrides)
    return ReproService(ServiceConfig(**kwargs))


def query(service, **fields):
    obj = {"op": "query", "dataset": DATASET, "k": 4}
    obj.update(fields)
    return service.handle_request(obj)


class TestLRUCache:
    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        evicted = cache.put("c", 3)
        assert evicted == [("b", 2)]
        assert cache.get("b") is None
        assert cache.keys() == ["a", "c"]

    def test_stats_count_hits_misses_evictions(self):
        cache = LRUCache(1)
        cache.put("a", 1)
        cache.get("a")
        cache.get("nope")
        cache.put("b", 2)
        assert cache.stats() == {
            "size": 1, "capacity": 1, "hits": 1, "misses": 1, "evictions": 1,
            "invalidations": 0,
        }

    def test_pop_counts_invalidations_not_evictions(self):
        released = []
        cache = LRUCache(2, on_evict=lambda k, v: released.append(k))
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.pop("a") == 1
        assert cache.pop("a") is None  # absent: no double count
        stats = cache.stats()
        assert stats["invalidations"] == 1
        assert stats["evictions"] == 0
        assert released == []  # the caller owns stale-entry cleanup
        assert cache.items() == [("b", 2)]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestSingleFlight:
    def test_concurrent_callers_share_one_execution(self):
        flight = SingleFlight()
        calls = []
        release = threading.Event()

        def work():
            calls.append(threading.get_ident())
            release.wait(5)
            return "value"

        with ThreadPoolExecutor(8) as pool:
            futures = [
                pool.submit(flight.do, "key", work) for _ in range(8)
            ]
            while not calls:  # wait for the leader to enter
                time.sleep(0.01)
            time.sleep(0.05)  # let the followers queue up on the event
            release.set()
            outcomes = [f.result() for f in futures]
        assert len(calls) == 1
        assert all(value == "value" for value, _ in outcomes)
        assert sum(1 for _, leader in outcomes if leader) == 1

    def test_followers_share_the_leaders_exception(self):
        flight = SingleFlight()
        entered = threading.Event()
        release = threading.Event()

        def boom():
            entered.set()
            release.wait(5)
            raise RuntimeError("shared failure")

        with ThreadPoolExecutor(2) as pool:
            first = pool.submit(flight.do, "key", boom)
            assert entered.wait(5)
            second = pool.submit(flight.do, "key", boom)
            time.sleep(0.05)
            release.set()
            for future in (first, second):
                with pytest.raises(RuntimeError, match="shared failure"):
                    future.result()

    def test_sequential_calls_do_not_coalesce(self):
        flight = SingleFlight()
        assert flight.do("k", lambda: 1) == (1, True)
        assert flight.do("k", lambda: 2) == (2, True)


class TestProtocol:
    def test_parse_request_rejects_bad_json(self):
        with pytest.raises(InvalidParameterError, match="not valid JSON"):
            parse_request("{nope")

    def test_parse_request_rejects_unknown_op(self):
        with pytest.raises(InvalidParameterError, match="unknown op"):
            parse_request('{"op": "frobnicate"}')

    def test_parse_request_rejects_non_object(self):
        with pytest.raises(InvalidParameterError, match="JSON object"):
            parse_request("[1, 2]")


class TestServiceOps:
    def test_query_speaks_result_v1(self):
        service = make_service()
        env = query(service)
        assert env["schema"] == SERVICE_SCHEMA
        assert env["code"] == 0
        assert env["error"] is None
        assert validate_result(env) == []
        result = DenseSubgraphResult.from_dict(env["result"])
        assert result.k == 4
        assert result.density > 0

    def test_second_identical_query_is_a_result_cache_hit(self):
        service = make_service()
        cold = query(service)
        warm = query(service)
        assert cold["cached"] is False
        assert warm["cached"] is True
        assert warm["result"] == cold["result"]
        stats = service.stats_snapshot()
        assert stats["counters"]["service/computations"] == 1
        assert stats["counters"]["service/result_cache/hit"] == 1

    def test_different_k_shares_the_cached_index(self):
        service = make_service()
        query(service, k=4)
        env = query(service, k=5)
        assert env["cached"] is False  # different result key...
        stats = service.stats_snapshot()
        assert stats["counters"]["service/index_builds"] == 1  # ...same index

    def test_index_cache_evicts_lru(self):
        service = make_service(cache_size=1)
        service.handle_request({"op": "build", "dataset": "email"})
        service.handle_request({"op": "build", "dataset": "dblp"})
        stats = service.stats_snapshot()
        assert stats["index_cache"]["size"] == 1
        assert stats["index_cache"]["evictions"] == 1
        assert stats["counters"]["service/index_cache/evictions"] == 1
        # the evicted index rebuilds on demand
        env = service.handle_request({"op": "build", "dataset": "email"})
        assert env["index"]["cached"] is False
        assert service.stats_snapshot()["counters"]["service/index_builds"] == 3

    def test_build_then_query_reuses_the_index(self):
        service = make_service()
        first = service.handle_request({"op": "build", "dataset": DATASET})
        assert first["code"] == 0
        assert first["index"]["cached"] is False
        second = service.handle_request({"op": "build", "dataset": DATASET})
        assert second["index"]["cached"] is True
        query(service)
        stats = service.stats_snapshot()
        assert stats["counters"]["service/index_builds"] == 1

    def test_threshold_is_part_of_the_cache_key(self):
        service = make_service()
        service.handle_request({"op": "build", "dataset": DATASET})
        service.handle_request(
            {"op": "build", "dataset": DATASET, "threshold": 5}
        )
        assert service.stats_snapshot()["counters"]["service/index_builds"] == 2

    def test_profile_speaks_profile_v1(self):
        service = make_service()
        env = service.handle_request(
            {"op": "profile", "dataset": DATASET, "iterations": 2}
        )
        assert env["code"] == 0
        assert env["profile"]["schema"] == "repro/profile-v1"
        assert env["profile"]["rows"]
        assert validate_result(env) == []

    def test_stats_speaks_service_stats_v1(self):
        service = make_service()
        query(service)
        env = service.handle_request({"op": "stats"})
        assert env["stats"]["schema"] == "repro/service-stats-v1"
        assert env["stats"]["counters"]["service/requests/query"] == 1
        assert validate_result(env) == []

    def test_unknown_dataset_is_a_bad_request(self):
        env = query(make_service(), dataset="not-a-dataset")
        assert env["code"] == 2
        assert "not-a-dataset" in env["error"]

    def test_unknown_method_is_a_bad_request(self):
        env = query(make_service(), method="frobnicate")
        assert env["code"] == 2

    def test_missing_graph_source_is_a_bad_request(self):
        env = make_service().handle_request({"op": "query", "k": 4})
        assert env["code"] == 2

    def test_unknown_op_is_a_bad_request(self):
        env = make_service().handle_request({"op": "nope"})
        assert env["code"] == 2


class TestCoalescing:
    def test_eight_concurrent_identical_queries_one_computation(
        self, monkeypatch
    ):
        service = make_service()
        service.handle_request({"op": "build", "dataset": DATASET})
        computations = []
        release = threading.Event()
        real = server_mod.densest_subgraph

        def slow_densest_subgraph(*args, **kwargs):
            computations.append(threading.get_ident())
            release.wait(10)
            return real(*args, **kwargs)

        monkeypatch.setattr(
            server_mod, "densest_subgraph", slow_densest_subgraph
        )
        with ThreadPoolExecutor(8) as pool:
            futures = [pool.submit(query, service) for _ in range(8)]
            while not computations:
                time.sleep(0.01)
            time.sleep(0.1)  # give every follower time to join the flight
            release.set()
            envelopes = [f.result() for f in futures]

        assert len(computations) == 1, "coalescing must run the query once"
        leaders = [
            e for e in envelopes if not e["coalesced"] and not e["cached"]
        ]
        assert len(leaders) == 1
        shared = [e for e in envelopes if e["coalesced"] or e["cached"]]
        assert len(shared) == 7
        stats = service.stats_snapshot()
        assert stats["counters"]["service/computations"] == 1
        assert (
            stats["counters"].get("service/coalesced", 0)
            + stats["counters"].get("service/result_cache/hit", 0)
        ) == 7
        for env in envelopes:
            assert env["code"] == 0
            assert env["result"] == envelopes[0]["result"]

    def test_concurrent_cold_builds_coalesce(self, monkeypatch):
        service = make_service()
        builds = []
        release = threading.Event()
        real = server_mod.SCTIndex.build

        def slow_build(*args, **kwargs):
            builds.append(1)
            release.wait(10)
            return real(*args, **kwargs)

        monkeypatch.setattr(server_mod.SCTIndex, "build", staticmethod(slow_build))
        with ThreadPoolExecutor(4) as pool:
            futures = [
                pool.submit(
                    service.handle_request,
                    {"op": "build", "dataset": DATASET},
                )
                for _ in range(4)
            ]
            while not builds:
                time.sleep(0.01)
            time.sleep(0.1)
            release.set()
            envelopes = [f.result() for f in futures]
        assert len(builds) == 1
        assert all(env["code"] == 0 for env in envelopes)


class TestBudgets:
    def test_zero_timeout_matches_cli_exhausted_exit_code(self):
        env = query(make_service(), timeout_s=0)
        assert env["code"] == cli.EXIT_EXHAUSTED == 3
        result = DenseSubgraphResult.from_dict(env["result"])
        assert result.is_partial
        assert not result.valid
        assert result.vertices == []
        assert validate_result(env) == []

    def test_iteration_cap_returns_valid_partial_with_cli_exit_code(self):
        service = make_service()
        service.handle_request({"op": "build", "dataset": DATASET})
        env = query(service, max_iterations=1, iterations=10)
        assert env["code"] == cli.EXIT_PARTIAL == 4
        result = DenseSubgraphResult.from_dict(env["result"])
        assert result.is_partial
        assert result.valid
        assert result.reason == "max_iterations"
        assert result.density > 0
        assert validate_result(env) == []

    def test_partial_results_are_not_cached(self):
        service = make_service()
        service.handle_request({"op": "build", "dataset": DATASET})
        query(service, max_iterations=1, iterations=10)
        env = query(service, max_iterations=1, iterations=10)
        assert env["cached"] is False
        assert service.stats_snapshot()["counters"]["service/computations"] == 2


class TestDrain:
    def test_drain_cancels_inflight_and_returns_valid_partial(
        self, monkeypatch
    ):
        service = make_service()
        service.handle_request({"op": "build", "dataset": DATASET})
        entered = threading.Event()
        real = server_mod.densest_subgraph

        def entering_densest_subgraph(*args, **kwargs):
            entered.set()
            time.sleep(0.1)  # stay in flight while the drain lands
            return real(*args, **kwargs)

        monkeypatch.setattr(
            server_mod, "densest_subgraph", entering_densest_subgraph
        )
        with ThreadPoolExecutor(1) as pool:
            future = pool.submit(query, service, timeout_s=300)
            assert entered.wait(5)
            service.drain()
            env = future.result()
        assert env["code"] == cli.EXIT_PARTIAL
        result = DenseSubgraphResult.from_dict(env["result"])
        assert result.is_partial
        assert result.valid
        assert result.reason == "cancelled"

    def test_requests_after_drain_are_refused(self):
        service = make_service()
        service.drain()
        env = query(service)
        assert env["code"] == 1
        assert "draining" in env["error"]


class TestHTTPTransport:
    @pytest.fixture()
    def server(self):
        httpd, service = make_server(ServiceConfig(port=0, cache_size=2))
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        yield httpd, service
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=5)

    @staticmethod
    def post(port, path, body):
        data = body if isinstance(body, bytes) else json.dumps(body).encode()
        req = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}", data=data, method="POST"
        )
        with urllib.request.urlopen(req) as resp:
            lines = resp.read().decode().splitlines()
            return resp.status, [json.loads(line) for line in lines]

    def test_query_round_trip(self, server):
        httpd, _ = server
        port = httpd.server_address[1]
        status, envelopes = self.post(
            port, "/v1/query", {"dataset": DATASET, "k": 4}
        )
        assert status == 200
        assert len(envelopes) == 1
        assert envelopes[0]["code"] == 0
        assert validate_result(envelopes[0]) == []

    def test_rpc_batch(self, server):
        httpd, _ = server
        port = httpd.server_address[1]
        body = (
            json.dumps({"op": "build", "dataset": DATASET}) + "\n"
            + json.dumps({"op": "query", "dataset": DATASET, "k": 4}) + "\n"
            + json.dumps({"op": "stats"}) + "\n"
        ).encode()
        status, envelopes = self.post(port, "/v1/rpc", body)
        assert status == 200
        assert [env["op"] for env in envelopes] == ["build", "query", "stats"]
        assert all(env["code"] == 0 for env in envelopes)
        assert envelopes[1]["result"]["schema"] == "repro/result-v1"

    def test_bad_request_is_http_400(self, server):
        httpd, _ = server
        port = httpd.server_address[1]
        req = urllib.request.Request(
            f"http://127.0.0.1:{port}/v1/query",
            data=b'{"dataset": "email"}', method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req)
        assert excinfo.value.code == 400
        envelope = json.loads(excinfo.value.read().decode().splitlines()[0])
        assert envelope["code"] == 2

    def test_healthz_flips_to_503_on_drain(self, server):
        httpd, service = server
        port = httpd.server_address[1]
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/healthz"
        ) as resp:
            assert resp.status == 200
        service.drain()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"http://127.0.0.1:{port}/healthz")
        assert excinfo.value.code == 503


class TestSigtermDrain:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, text=True,
        )
        try:
            announce = proc.stdout.readline()
            assert "listening on http://" in announce
            port = int(announce.rsplit(":", 1)[1])
            req = urllib.request.Request(
                f"http://127.0.0.1:{port}/v1/query",
                data=json.dumps({"dataset": DATASET, "k": 4}).encode(),
                method="POST",
            )
            with urllib.request.urlopen(req, timeout=60) as resp:
                envelope = json.loads(resp.read().decode().splitlines()[0])
            assert envelope["code"] == 0
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "repro service drained" in out
        assert "draining" in err


class TestDiskIndexTier:
    """``index_dir`` adds an mmap tier between the LRU and a rebuild."""

    def test_cold_start_mmaps_instead_of_rebuilding(self, tmp_path):
        index_dir = str(tmp_path / "indices")
        first = make_service(index_dir=index_dir)
        warm = query(first)
        assert warm["code"] == 0
        stats = first.stats_snapshot()["counters"]
        assert stats["service/index_builds"] == 1
        assert stats["service/index_cache/disk_store"] == 1
        files = os.listdir(index_dir)
        assert len(files) == 1 and files[0].endswith(".sct2")

        # a fresh process with the same index_dir: no rebuild, mmap load
        second = make_service(index_dir=index_dir)
        cold = query(second)
        assert cold["code"] == 0

        def _stable(result):
            return {k: v for k, v in result.items() if k != "timings"}

        assert _stable(cold["result"]) == _stable(warm["result"])
        stats = second.stats_snapshot()["counters"]
        assert "service/index_builds" not in stats
        assert stats["service/index_cache/disk_hit"] == 1
        loaded = second._indices.values()
        assert len(loaded) == 1
        assert loaded[0].backing == "mmap"

    def test_corrupt_disk_file_falls_back_to_rebuild(self, tmp_path):
        index_dir = str(tmp_path / "indices")
        first = make_service(index_dir=index_dir)
        query(first)
        (path,) = [
            os.path.join(index_dir, name) for name in os.listdir(index_dir)
        ]
        with open(path, "wb") as handle:
            handle.write(b"\x00" * 16)  # neither v1 nor v2 any more

        second = make_service(index_dir=index_dir)
        env = query(second)
        assert env["code"] == 0
        stats = second.stats_snapshot()["counters"]
        assert stats["service/index_cache/disk_error"] == 1
        assert stats["service/index_builds"] == 1
        # the rebuild re-persisted a good file for the next cold start
        assert stats["service/index_cache/disk_store"] == 1
        third = make_service(index_dir=index_dir)
        query(third)
        assert third.stats_snapshot()["counters"][
            "service/index_cache/disk_hit"
        ] == 1

    def test_without_index_dir_nothing_is_persisted(self, tmp_path):
        service = make_service()
        query(service)
        stats = service.stats_snapshot()["counters"]
        assert "service/index_cache/disk_store" not in stats
        assert "service/index_cache/disk_hit" not in stats


# ---------------------------------------------------------------------------
# POST /v1/update: incremental index maintenance through the daemon
# ---------------------------------------------------------------------------

def two_clique_graph_file(tmp_path):
    """Two disjoint cliques (K6 on 0-5, K5 on 6-10) as an edge list.

    Disjoint components keep dirty regions block-local, so one block's
    cached results survive the other block's updates — the property the
    fine-grained invalidation tests pin down.
    """
    path = tmp_path / "two_cliques.txt"
    lines = []
    for base, size in ((0, 6), (6, 5)):
        for i in range(size):
            for j in range(i + 1, size):
                lines.append(f"{base + i} {base + j}")
    path.write_text("\n".join(lines) + "\n")
    return str(path)


def update(service, path, **fields):
    obj = {"op": "update", "path": path}
    obj.update(fields)
    return service.handle_request(obj)


class TestServiceUpdate:
    def test_update_applies_bumps_version_and_patches_disk(self, tmp_path):
        from repro.core import SCTIndex
        from repro.graph import read_edge_list

        path = two_clique_graph_file(tmp_path)
        index_dir = str(tmp_path / "indices")
        service = make_service(index_dir=index_dir)
        first = service.handle_request({"op": "query", "path": path, "k": 5})
        assert first["code"] == 0 and first["graph_version"] == 0

        env = update(service, path, deletes=[[6, 7]])
        assert env["code"] == 0
        assert env["applied"] is True
        assert env["graph_version"] == 1
        assert env["update"]["deletes"] == 1
        assert validate_result(env) == []

        env2 = update(service, path, inserts=[[6, 7]], deletes=[[7, 8]])
        assert env2["graph_version"] == 2

        counters = service.stats_snapshot()["counters"]
        assert counters["service/index_updates"] == 2
        # exactly one .sct2 (plus its graph_version sidecar), holding
        # the post-update index byte-for-byte
        (disk_file,) = [
            f for f in os.listdir(index_dir) if f.endswith(".sct2")
        ]
        (meta_file,) = [
            f for f in os.listdir(index_dir) if f.endswith(".meta.json")
        ]
        with open(os.path.join(index_dir, meta_file)) as handle:
            assert json.load(handle)["graph_version"] == 2
        loaded = SCTIndex.load(os.path.join(index_dir, disk_file))
        graph = read_edge_list(path)
        from repro.core import apply_edge_updates

        g1, _, _ = apply_edge_updates(graph, deletes=[(6, 7)])
        g2, _, _ = apply_edge_updates(g1, inserts=[(6, 7)], deletes=[(7, 8)])
        fresh = SCTIndex.build(g2)
        assert loaded.clique_counts_by_size() == fresh.clique_counts_by_size()

    def test_fine_grained_invalidation_proven_by_counters(self, tmp_path):
        path = two_clique_graph_file(tmp_path)
        service = make_service()
        for k in (5, 6):
            env = service.handle_request(
                {"op": "query", "path": path, "k": k}
            )
            assert env["code"] == 0
            assert env["result"]["vertices"] == [0, 1, 2, 3, 4, 5]

        # an update in the OTHER component retains both cached results
        env = update(service, path, deletes=[[6, 7]])
        assert env["invalidated_results"] == 0
        assert env["retained_results"] == 2
        warm = service.handle_request({"op": "query", "path": path, "k": 5})
        assert warm["cached"] is True
        assert warm["graph_version"] == 0  # computed-at stamp, still valid

        # an update INSIDE the cached subgraph invalidates both
        env = update(service, path, deletes=[[0, 1]])
        assert env["invalidated_results"] == 2
        assert env["retained_results"] == 0
        fresh = service.handle_request({"op": "query", "path": path, "k": 5})
        assert fresh["cached"] is False
        assert fresh["graph_version"] == 2

        counters = service.stats_snapshot()["counters"]
        assert counters["service/result_cache/invalidated"] == 2
        assert counters["service/result_cache/retained"] == 2
        assert service.stats_snapshot()["result_cache"]["invalidations"] == 2

    def test_budget_partial_keeps_old_index_serving(self, tmp_path):
        path = two_clique_graph_file(tmp_path)
        service = make_service()
        before = service.handle_request({"op": "query", "path": path, "k": 5})
        assert before["code"] == 0

        env = update(service, path, deletes=[[0, 1]], timeout_s=1e-9)
        assert env["code"] == 4
        assert env["applied"] is False
        assert env["reason"]
        assert env["graph_version"] == 0  # the version did not move
        assert validate_result(env) == []

        after = service.handle_request({"op": "query", "path": path, "k": 5})
        assert after["cached"] is True  # nothing was invalidated
        assert after["result"]["vertices"] == before["result"]["vertices"]

    def test_validation_and_capability_errors(self, tmp_path):
        path = two_clique_graph_file(tmp_path)
        service = make_service()
        env = update(service, path)
        assert env["code"] == 2 and "at least one edge" in env["error"]

        env = update(service, path, inserts="nope")
        assert env["code"] == 2

        env = update(service, path, deletes=[[0, 1]], method="kcl")
        assert env["code"] == 2
        assert "does not support incremental updates" in env["error"]
        assert "sctl*" in env["error"]  # lists the methods that do

        env = update(service, path, deletes=[[0, 6]])
        assert env["code"] == 2 and "not present" in env["error"]
        # a rejected batch must not bump the version
        assert service.stats_snapshot()["graph_versions"] == {}

    def test_sibling_index_keys_are_evicted(self, tmp_path):
        path = two_clique_graph_file(tmp_path)
        index_dir = str(tmp_path / "indices")
        service = make_service(index_dir=index_dir)
        # materialise two index keys over one graph
        full = service.handle_request({"op": "build", "path": path})
        partial = service.handle_request(
            {"op": "build", "path": path, "threshold": 4}
        )
        assert full["code"] == 0 and partial["code"] == 0
        assert len(os.listdir(index_dir)) == 2
        assert len(service._indices) == 2

        env = update(service, path, deletes=[[0, 1]])  # threshold-0 key
        assert env["code"] == 0
        assert env["evicted_sibling_indices"] == 1
        # only the updated key remains, in memory and on disk
        assert len(service._indices) == 1
        assert len(
            [f for f in os.listdir(index_dir) if f.endswith(".sct2")]
        ) == 1
        counters = service.stats_snapshot()["counters"]
        assert counters["service/index_cache/sibling_evictions"] == 1

    def test_failed_disk_patch_does_not_fail_the_update(
        self, tmp_path, monkeypatch
    ):
        from repro.core import SCTIndex

        path = two_clique_graph_file(tmp_path)
        index_dir = str(tmp_path / "indices")
        service = make_service(index_dir=index_dir)
        service.handle_request({"op": "query", "path": path, "k": 5})
        (disk_file,) = os.listdir(index_dir)
        disk_path = os.path.join(index_dir, disk_file)
        before = open(disk_path, "rb").read()

        def broken_save(self, path, format=None):
            raise OSError("disk full")

        monkeypatch.setattr(server_mod.SCTIndex, "save", broken_save)
        env = update(service, path, deletes=[[0, 1]])
        assert env["code"] == 0 and env["applied"] is True
        counters = service.stats_snapshot()["counters"]
        assert counters["service/index_cache/disk_store_error"] == 1
        # the previous file is untouched and still loads
        assert open(disk_path, "rb").read() == before
        monkeypatch.undo()
        assert SCTIndex.load(disk_path).n_vertices == 11

    def test_updates_during_queries_stay_consistent(self, tmp_path):
        path = two_clique_graph_file(tmp_path)
        service = make_service(result_cache_size=64)
        service.handle_request({"op": "query", "path": path, "k": 5})
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                env = service.handle_request(
                    {"op": "query", "path": path, "k": 5}
                )
                if env["code"] != 0:
                    failures.append(env)
                    return
                density = env["result"]["density"]
                # K6 intact -> C(6,5)/6 = 1.0; one edge missing -> 2/6
                if density not in (1.0, pytest.approx(2 / 6)):
                    failures.append(env)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(8):
                env = update(service, path, deletes=[[0, 1]])
                assert env["code"] == 0
                env = update(service, path, inserts=[[0, 1]])
                assert env["code"] == 0
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
        assert failures == []
        versions = service.stats_snapshot()["graph_versions"]
        assert versions == {f"path/{path}": 16}

    def test_http_route_and_typed_client(self, tmp_path):
        from repro.service import ServiceClient, UpdateOutcome

        path = two_clique_graph_file(tmp_path)
        httpd, service = make_server(ServiceConfig(port=0, cache_size=2))
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            port = httpd.server_address[1]
            client = ServiceClient(f"http://127.0.0.1:{port}")
            query_outcome = client.query(path=path, k=5)
            assert query_outcome.ok
            assert query_outcome.graph_version == 0
            result = query_outcome.result
            assert isinstance(result, DenseSubgraphResult)
            assert result.vertices == [0, 1, 2, 3, 4, 5]

            outcome = client.update(deletes=[(0, 1)], path=path)
            assert isinstance(outcome, UpdateOutcome)
            assert outcome.ok and outcome.applied
            assert outcome.graph_version == 1
            assert outcome.update["deletes"] == 1
            assert outcome.invalidated_results == 1
            # raw-dict access still works on the same object
            assert outcome["code"] == 0
            assert json.loads(json.dumps(outcome)) == dict(outcome)

            # raw escape hatch speaks the same envelope
            raw = client.rpc("stats")
            assert raw["code"] == 0
            assert raw["stats"]["graph_versions"] == {f"path/{path}": 1}
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5)

    def test_mmap_backed_index_survives_disk_patch(self, tmp_path):
        """Patching the .sct2 must not invalidate live mappings.

        ``SCTIndex.save`` goes through an atomic temp-file + ``os.replace``,
        so a reader that mmap'ed the old file keeps its (now anonymous)
        inode until it drops the index — another process's update can
        never corrupt in-flight queries.
        """
        path = two_clique_graph_file(tmp_path)
        index_dir = str(tmp_path / "indices")
        writer = make_service(index_dir=index_dir)
        assert writer.handle_request({"op": "build", "path": path})["code"] == 0

        reader = make_service(index_dir=index_dir)
        env = reader.handle_request({"op": "query", "path": path, "k": 5})
        assert env["code"] == 0
        (mapped,) = reader._indices.values()
        assert mapped.backing == "mmap"
        before = mapped.clique_counts_by_size()

        patched = update(writer, path, deletes=[[0, 1]])
        assert patched["code"] == 0
        # the stale mapping still answers, byte-for-byte what it loaded
        assert mapped.clique_counts_by_size() == before
        env = reader.handle_request({"op": "query", "path": path, "k": 6})
        assert env["code"] == 0
        assert env["result"]["vertices"] == [0, 1, 2, 3, 4, 5]

    def test_cli_update_command(self, tmp_path, capsys):
        path = two_clique_graph_file(tmp_path)
        httpd, service = make_server(ServiceConfig(port=0, cache_size=2))
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            endpoint = f"http://127.0.0.1:{httpd.server_address[1]}"
            code = cli.main([
                "update", path, "--endpoint", endpoint, "--delete", "0,1",
            ])
            assert code == 0
            out = capsys.readouterr().out
            assert "graph_version=1" in out and "-1 edges" in out

            code = cli.main([
                "update", path, "--endpoint", endpoint, "--insert", "zero,1",
            ])
            assert code == 2
            assert "expects an edge" in capsys.readouterr().err

            code = cli.main([
                "update", path, "--endpoint", endpoint,
                "--insert", "0,1", "--json",
            ])
            assert code == 0
            envelope = json.loads(capsys.readouterr().out)
            assert envelope["applied"] is True
            assert envelope["graph_version"] == 2
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5)


class TestStaleSourceWarning:
    """Cold start with a patched on-disk index warns about divergence."""

    def test_cold_start_with_patched_index_warns_once(
        self, tmp_path, capsys
    ):
        path = two_clique_graph_file(tmp_path)
        index_dir = str(tmp_path / "indices")
        first = make_service(index_dir=index_dir)
        assert first.handle_request(
            {"op": "query", "path": path, "k": 5}
        )["code"] == 0
        assert update(first, path, deletes=[[6, 7]])["graph_version"] == 1
        # the patched file now carries a graph_version=1 sidecar
        metas = [
            name for name in os.listdir(index_dir)
            if name.endswith(".meta.json")
        ]
        assert len(metas) == 1

        # a fresh worker reloads the edge list from its original file
        # but mmaps the *patched* index: structured warning + counter
        second = make_service(index_dir=index_dir)
        capsys.readouterr()
        assert second.handle_request(
            {"op": "query", "path": path, "k": 5}
        )["code"] == 0
        warning = json.loads(capsys.readouterr().err.strip())
        assert warning["op"] == "startup"
        assert warning["warning"] == "stale_source"
        assert warning["persisted_graph_version"] == 1
        assert warning["graph"] == ["path", path]
        counters = second.stats_snapshot()["counters"]
        assert counters["service/index_cache/stale_source"] == 1

        # warn once per key: a second hit stays quiet
        assert second.handle_request(
            {"op": "query", "path": path, "k": 4}
        )["code"] == 0
        assert capsys.readouterr().err == ""
        counters = second.stats_snapshot()["counters"]
        assert counters["service/index_cache/stale_source"] == 1

    def test_self_applied_updates_do_not_warn(self, tmp_path, capsys):
        path = two_clique_graph_file(tmp_path)
        index_dir = str(tmp_path / "indices")
        service = make_service(index_dir=index_dir)
        assert service.handle_request(
            {"op": "query", "path": path, "k": 5}
        )["code"] == 0
        assert update(service, path, deletes=[[6, 7]])["graph_version"] == 1
        # this process applied the update itself: evicting and reloading
        # from disk within the same process is not a divergence
        service._indices.clear()
        capsys.readouterr()
        assert service.handle_request(
            {"op": "query", "path": path, "k": 5}
        )["code"] == 0
        assert capsys.readouterr().err == ""
        counters = service.stats_snapshot()["counters"]
        assert "service/index_cache/stale_source" not in counters
