"""Consistent-hash ring: placement determinism, movement bounds, keys.

The ring is the fleet's single source of placement truth — router,
workers and topology-aware clients all derive the owner independently —
so these tests pin (a) exact deterministic placements (a snapshot that
must never drift across Python versions or refactors), (b) the
consistent-hashing contract that a membership change moves at most
~1/N of the keyspace, and (c) the replica/failover geometry that warm
replicas rely on.
"""

import json

import pytest

from repro.errors import InvalidParameterError
from repro.service.hashring import (
    HashRing,
    graph_string,
    key_string,
    parse_key_string,
    request_key,
)


def _keys(n):
    return [
        key_string((("dataset", f"g{i}"), i % 3, "{}")) for i in range(n)
    ]


class TestRequestKey:
    def test_matches_server_cache_key_shape(self):
        key = request_key(
            {"dataset": "email", "threshold": 2,
             "build_options": {"b": 1, "a": 2}}
        )
        assert key == (
            ("dataset", "email"), 2, json.dumps({"a": 2, "b": 1},
                                                sort_keys=True),
        )

    def test_build_options_order_is_canonical(self):
        a = request_key({"dataset": "d", "build_options": {"x": 1, "y": 2}})
        b = request_key({"dataset": "d", "build_options": {"y": 2, "x": 1}})
        assert a == b

    def test_path_and_dataset_are_exclusive(self):
        with pytest.raises(InvalidParameterError):
            request_key({})
        with pytest.raises(InvalidParameterError):
            request_key({"dataset": "d", "path": "p"})

    def test_key_string_round_trips(self):
        obj = {"path": "/tmp/g.txt", "threshold": 3,
               "build_options": {"opt": True}}
        canonical = key_string(request_key(obj))
        fields = parse_key_string(canonical)
        assert fields == {
            "path": "/tmp/g.txt", "threshold": 3,
            "build_options": {"opt": True},
        }
        assert key_string(request_key(fields)) == canonical

    def test_graph_string_groups_by_source(self):
        k0 = key_string(request_key({"dataset": "email", "threshold": 0}))
        k2 = key_string(request_key({"dataset": "email", "threshold": 2}))
        assert k0 != k2
        assert graph_string(k0) == graph_string(k2)


class TestPlacementDeterminism:
    # an exact placement snapshot: if this drifts, every deployed
    # router/client pair disagrees about ownership mid-rollout
    SNAPSHOT = {
        '[["dataset", "g0"], 0, "{}"]': "w0",
        '[["dataset", "g1"], 1, "{}"]': "w1",
        '[["dataset", "g2"], 2, "{}"]': "w2",
        '[["dataset", "g3"], 0, "{}"]': "w1",
        '[["dataset", "g4"], 1, "{}"]': "w0",
        '[["dataset", "g5"], 2, "{}"]': "w3",
        '[["dataset", "g6"], 0, "{}"]': "w0",
        '[["dataset", "g7"], 1, "{}"]': "w3",
    }

    def test_pinned_snapshot(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        placed = {key: ring.owner(key) for key in self.SNAPSHOT}
        assert placed == self.SNAPSHOT

    def test_join_order_is_irrelevant(self):
        keys = _keys(200)
        a = HashRing(["w0", "w1", "w2"])
        b = HashRing(["w2", "w0", "w1"])
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]

    def test_every_key_has_exactly_one_owner(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        for key in _keys(100):
            owner = ring.owner(key)
            assert owner in ("w0", "w1", "w2", "w3")
            # ask twice: placement is a pure function
            assert ring.owner(key) == owner

    def test_empty_ring(self):
        ring = HashRing()
        assert ring.owner("anything") is None
        assert ring.preference("anything") == []
        assert len(ring) == 0


class TestMovementBound:
    @pytest.mark.parametrize("n", [2, 3, 4, 8])
    def test_join_moves_at_most_2_over_n(self, n):
        # property: adding one worker to an n-node ring remaps at most
        # 2/n of a large keyspace (expectation is 1/(n+1); 2/n is the
        # hard bound the acceptance criteria pin)
        keys = _keys(600)
        ring = HashRing([f"w{i}" for i in range(n)])
        before = {k: ring.owner(k) for k in keys}
        ring.add("joiner")
        moved = sum(1 for k in keys if ring.owner(k) != before[k])
        assert moved / len(keys) <= 2 / n
        # every moved key moved TO the joiner (no shuffling of the rest)
        for k in keys:
            if ring.owner(k) != before[k]:
                assert ring.owner(k) == "joiner"

    @pytest.mark.parametrize("n", [3, 4, 8])
    def test_leave_moves_only_the_dead_workers_keys(self, n):
        keys = _keys(600)
        ring = HashRing([f"w{i}" for i in range(n)])
        before = {k: ring.owner(k) for k in keys}
        ring.remove("w0")
        for k in keys:
            if before[k] == "w0":
                assert ring.owner(k) != "w0"
            else:
                assert ring.owner(k) == before[k]
        moved = sum(1 for k in keys if before[k] == "w0")
        assert moved / len(keys) <= 2 / n

    def test_epoch_bumps_only_on_real_changes(self):
        ring = HashRing(["w0", "w1"])
        epoch = ring.epoch
        assert ring.add("w0") is False
        assert ring.remove("missing") is False
        assert ring.epoch == epoch
        assert ring.add("w2") is True
        assert ring.remove("w0") is True
        assert ring.epoch == epoch + 2


class TestPreference:
    def test_replica_set_is_disjoint_from_owner(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        for key in _keys(100):
            prefs = ring.preference(key, 3)
            assert prefs[0] == ring.owner(key)
            assert len(prefs) == len(set(prefs)) == 3
            assert ring.owner(key) not in prefs[1:]

    def test_preference_capped_by_member_count(self):
        ring = HashRing(["w0", "w1"])
        prefs = ring.preference("some-key", 5)
        assert len(prefs) == 2
        assert set(prefs) == {"w0", "w1"}

    def test_owner_death_promotes_preference_1(self):
        # the warm-replica invariant: when the owner leaves, the old
        # preference[1] becomes the new owner, so a replica parked
        # there serves the key with zero cold time
        ring = HashRing(["w0", "w1", "w2", "w3"])
        for key in _keys(60):
            owner, runner_up = ring.preference(key, 2)
            ring.remove(owner)
            assert ring.owner(key) == runner_up
            ring.add(owner)


class TestValidation:
    def test_vnodes_must_be_positive(self):
        with pytest.raises(InvalidParameterError):
            HashRing(vnodes=0)

    def test_node_names_must_be_non_empty_strings(self):
        ring = HashRing()
        with pytest.raises(InvalidParameterError):
            ring.add("")
        with pytest.raises(InvalidParameterError):
            ring.add(7)

    def test_snapshot_shape(self):
        ring = HashRing(["w1", "w0"])
        assert ring.snapshot() == {
            "epoch": 2, "nodes": ["w0", "w1"], "vnodes": 64,
        }
