"""Loose wall-clock tripwires.

Not benchmarks — the thresholds carry a ~10x safety margin over the
measured times on a single modest core, so they only fire on genuine
complexity regressions (e.g. the index build degrading from output-linear
to enumeration-exponential, or max-depth pruning silently turned off).
"""

import time

import pytest

from repro.core import SCTIndex, sctl_star
from repro.datasets import load_dataset


def _elapsed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


class TestComplexityTripwires:
    def test_index_build_is_output_linear(self):
        graph = load_dataset("email")
        assert _elapsed(lambda: SCTIndex.build(graph)) < 3.0

    def test_large_k_query_uses_pruning(self):
        # near k_max only a sliver of the tree may be visited; without
        # max-depth pruning this would crawl the whole index
        index = SCTIndex.build(load_dataset("gowalla"))
        k = index.max_clique_size - 1
        assert _elapsed(lambda: sctl_star(index, k, iterations=10)) < 2.0

    def test_livejournal_near_kmax_is_instant(self):
        # the partial-traversal guarantee on the extreme-k_max dataset:
        # pivoting means a 34-clique is ONE path, never 2^34 recursion
        graph = load_dataset("livejournal")
        index = SCTIndex.build(graph)
        assert _elapsed(lambda: index.count_k_cliques(32)) < 2.0

    def test_counting_by_formula_not_enumeration(self):
        # C(34,17) ~ 2.3e9 cliques counted in closed form
        index = SCTIndex.build(load_dataset("livejournal"))
        start = time.perf_counter()
        total = index.count_k_cliques(17)
        assert time.perf_counter() - start < 2.0
        assert total > 2 * 10**9

    def test_batch_update_sublinear_in_cliques(self):
        from math import comb

        from repro.core import batch_update

        # one path holding ~5e8 cliques must be distributed in bounded
        # writes, never per-clique
        pivots = list(range(1, 41))
        weights = [0] * 41
        start = time.perf_counter()
        updates = batch_update(weights, [0], pivots, 20)
        assert time.perf_counter() - start < 1.0
        assert sum(weights) == comb(40, 19)
        assert updates < 10_000
