"""Unit tests for the Graph container."""

import pytest

from repro.errors import GraphError
from repro.graph import Graph, iter_bits


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.n == 0
        assert g.m == 0
        assert list(g.edges()) == []

    def test_basic_counts(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert g.n == 4
        assert g.m == 3

    def test_duplicate_edges_collapse(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.m == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [(1, 1)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 3)])

    def test_negative_n_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_labels_length_checked(self):
        with pytest.raises(GraphError):
            Graph(3, [], labels=["a", "b"])

    def test_from_edges_compacts_labels(self):
        g = Graph.from_edges([("x", "y"), ("y", "z")])
        assert g.n == 3
        assert g.m == 2
        assert {g.label_of(v) for v in g.vertices()} == {"x", "y", "z"}

    def test_complete_graph(self):
        g = Graph.complete(5)
        assert g.m == 10
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_copy_is_independent(self):
        g = Graph(3, [(0, 1)])
        h = g.copy()
        assert g == h
        assert g is not h


class TestAccessors:
    def test_neighbors_and_degree(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.neighbors(0) == {1, 2, 3}
        assert g.degree(0) == 3
        assert g.degree(1) == 1

    def test_edges_yield_each_once_ordered(self):
        g = Graph(4, [(2, 1), (3, 0)])
        assert sorted(g.edges()) == [(0, 3), (1, 2)]

    def test_has_edge_symmetric(self):
        g = Graph(3, [(0, 2)])
        assert g.has_edge(0, 2)
        assert g.has_edge(2, 0)
        assert not g.has_edge(0, 1)

    def test_max_degree_empty(self):
        assert Graph(0).max_degree() == 0

    def test_contains_protocol(self):
        g = Graph(3)
        assert 2 in g
        assert 3 not in g
        assert "x" not in g

    def test_repr_mentions_counts(self):
        assert repr(Graph(2, [(0, 1)])) == "Graph(n=2, m=1)"

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Graph(1))


class TestBitsets:
    def test_adjacency_bitsets_match_sets(self):
        g = Graph(5, [(0, 1), (0, 4), (2, 3)])
        rows = g.adjacency_bitsets()
        for u in g.vertices():
            assert set(iter_bits(rows[u])) == g.neighbors(u)

    def test_iter_bits_order(self):
        assert list(iter_bits(0b1011)) == [0, 1, 3]
        assert list(iter_bits(0)) == []


class TestSubgraphs:
    def test_induced_subgraph_edges(self):
        g = Graph.complete(5)
        sub, originals = g.induced_subgraph([0, 2, 4])
        assert sub.n == 3
        assert sub.m == 3
        assert originals == [0, 2, 4]

    def test_induced_subgraph_out_of_range(self):
        with pytest.raises(GraphError):
            Graph(3).induced_subgraph([5])

    def test_induced_subgraph_deduplicates(self):
        g = Graph(4, [(0, 1)])
        sub, originals = g.induced_subgraph([1, 0, 1])
        assert sub.n == 2
        assert originals == [0, 1]

    def test_induced_preserves_labels(self):
        g = Graph.from_edges([("a", "b"), ("b", "c")])
        sub, _ = g.induced_subgraph([1, 2])
        assert set(sub.labels) <= {"a", "b", "c"}

    def test_is_clique(self):
        g = Graph.complete(4)
        assert g.is_clique([0, 1, 2, 3])
        assert g.is_clique([1, 3])
        assert not g.is_clique([0, 0, 1])  # duplicates are not a clique

    def test_is_clique_missing_edge(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert not g.is_clique([0, 1, 2])
