"""The SCT*-Index: construction, counting, listing, pruning, paths."""

from math import comb

import pytest

from repro.cliques import (
    clique_count_by_size_naive,
    count_k_cliques_naive,
    iter_k_cliques_naive,
    iter_maximal_cliques,
    max_clique_size,
    per_vertex_counts_naive,
)
from repro.core import HOLD, PIVOT, SCTIndex, SCTPath
from repro.errors import IndexBuildError, IndexQueryError
from repro.graph import Graph, gnp_graph, grid_graph, relaxed_caveman_graph


class TestSCTPath:
    def test_clique_count_formula(self):
        path = SCTPath(holds=(0, 1), pivots=(2, 3, 4))
        assert path.clique_count(3) == comb(3, 1)
        assert path.clique_count(5) == 1
        assert path.clique_count(6) == 0
        assert path.clique_count(1) == 0  # fewer than the holds

    def test_pivot_engagement_formula(self):
        path = SCTPath(holds=(0,), pivots=(1, 2, 3))
        assert path.pivot_engagement(3) == comb(2, 1)
        assert path.pivot_engagement(1) == 0

    def test_iter_cliques_includes_all_holds(self):
        path = SCTPath(holds=(7, 8), pivots=(1, 2, 3))
        cliques = list(path.iter_cliques(4))
        assert len(cliques) == 3
        for c in cliques:
            assert 7 in c and 8 in c

    def test_len_and_vertices(self):
        path = SCTPath(holds=(0,), pivots=(1, 2))
        assert len(path) == 3
        assert path.vertices == (0, 1, 2)


class TestBuildInvariants:
    @pytest.mark.parametrize("seed", range(6))
    def test_every_path_is_a_clique(self, seed):
        g = gnp_graph(14, 0.5, seed=seed)
        index = SCTIndex.build(g)
        for path in index.iter_paths():
            assert g.is_clique(path.vertices)

    @pytest.mark.parametrize("seed", range(6))
    def test_counts_by_size_match_naive(self, seed):
        g = gnp_graph(13, 0.5, seed=seed)
        index = SCTIndex.build(g)
        assert index.clique_counts_by_size() == clique_count_by_size_naive(g)

    def test_max_clique_size_matches(self):
        g = gnp_graph(16, 0.45, seed=8)
        index = SCTIndex.build(g)
        assert index.max_clique_size == max_clique_size(g)

    def test_maximal_cliques_appear_as_leaves(self):
        g = gnp_graph(13, 0.5, seed=2)
        index = SCTIndex.build(g)
        leaves = {tuple(sorted(p.vertices)) for p in index.iter_paths()}
        assert set(iter_maximal_cliques(g)) <= leaves

    def test_empty_graph(self):
        index = SCTIndex.build(Graph(5))
        assert index.max_clique_size == 1
        assert index.count_k_cliques(1) == 5
        assert index.count_k_cliques(2) == 0

    def test_zero_vertex_graph(self):
        index = SCTIndex.build(Graph(0))
        assert index.max_clique_size == 0
        assert index.a_maximum_clique() == []

    def test_negative_threshold_rejected(self):
        with pytest.raises(IndexBuildError):
            SCTIndex.build(Graph(3), threshold=-1)

    def test_a_maximum_clique(self):
        g = relaxed_caveman_graph(5, 6, 0.05, seed=3)
        index = SCTIndex.build(g)
        clique = index.a_maximum_clique()
        assert g.is_clique(clique)
        assert len(clique) == index.max_clique_size


class TestCountingQueries:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_count_matches_naive(self, seed, k):
        g = gnp_graph(13, 0.5, seed=seed)
        index = SCTIndex.build(g)
        assert index.count_k_cliques(k) == count_k_cliques_naive(g, k)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_per_vertex_matches_naive(self, seed, k):
        g = gnp_graph(12, 0.5, seed=seed)
        index = SCTIndex.build(g)
        assert index.per_vertex_counts(k) == per_vertex_counts_naive(g, k)

    @pytest.mark.parametrize("k", [3, 4])
    def test_listing_matches_naive(self, k):
        g = gnp_graph(12, 0.55, seed=11)
        index = SCTIndex.build(g)
        got = sorted(tuple(sorted(c)) for c in index.iter_k_cliques(k))
        assert got == sorted(iter_k_cliques_naive(g, k))

    def test_count_in_subset(self):
        g = gnp_graph(14, 0.5, seed=5)
        index = SCTIndex.build(g)
        subset = [0, 2, 4, 6, 8, 10, 12]
        sub, _ = g.induced_subgraph(subset)
        for k in (2, 3, 4):
            assert index.count_in_subset(k, subset) == count_k_cliques_naive(sub, k)

    def test_per_vertex_in_subset(self):
        g = gnp_graph(14, 0.5, seed=6)
        index = SCTIndex.build(g)
        subset = list(range(0, 14, 2))
        sub, originals = g.induced_subgraph(subset)
        expected = per_vertex_counts_naive(sub, 3)
        got = index.per_vertex_counts_in_subset(3, subset)
        for local, original in enumerate(originals):
            assert got[original] == expected[local]

    def test_invalid_k_rejected(self):
        index = SCTIndex.build(Graph.complete(4))
        with pytest.raises(IndexQueryError):
            index.count_k_cliques(0)


class TestPartialIndex:
    @pytest.mark.parametrize("threshold", [3, 4, 5])
    def test_partial_answers_k_at_or_above_threshold(self, threshold):
        g = gnp_graph(16, 0.45, seed=20)
        full = SCTIndex.build(g)
        partial = SCTIndex.build(g, threshold=threshold)
        assert partial.n_tree_nodes <= full.n_tree_nodes
        for k in range(threshold, 8):
            assert partial.count_k_cliques(k) == count_k_cliques_naive(g, k)

    def test_partial_rejects_small_k(self):
        g = gnp_graph(16, 0.45, seed=21)
        partial = SCTIndex.build(g, threshold=4)
        assert not partial.supports_k(3)
        with pytest.raises(IndexQueryError):
            partial.count_k_cliques(3)

    def test_partial_strictly_smaller_when_pruning_applies(self):
        # star graph: no vertex is in a 3-clique, so threshold 3 prunes all
        g = Graph(6, [(0, i) for i in range(1, 6)])
        partial = SCTIndex.build(g, threshold=3)
        assert partial.n_tree_nodes == 0


class TestTraversalPruning:
    def test_max_depth_prunes_nodes(self):
        g = relaxed_caveman_graph(10, 7, 0.1, seed=4)
        index = SCTIndex.build(g)
        full = index.traversal_node_count(None)
        previous = full + 1
        for k in (3, 5, 7):
            visited = index.traversal_node_count(k)
            assert visited <= full
            assert visited < previous or visited == 0
            previous = visited

    def test_paths_filtered_by_k(self):
        g = gnp_graph(14, 0.5, seed=30)
        index = SCTIndex.build(g)
        for k in (3, 4, 5):
            for path in index.iter_paths(k):
                assert path.clique_count(k) > 0

    def test_repr(self):
        index = SCTIndex.build(Graph.complete(4))
        assert "SCTIndex" in repr(index)
        assert "max_clique=4" in repr(index)


class TestLabels:
    def test_root_children_are_holds(self):
        g = gnp_graph(10, 0.5, seed=1)
        index = SCTIndex.build(g)
        for path in index.iter_paths():
            assert len(path.holds) >= 1

    def test_hold_pivot_constants(self):
        assert HOLD == 0
        assert PIVOT == 1

    def test_grid_has_no_triangle_paths(self):
        index = SCTIndex.build(grid_graph(5, 5))
        assert index.count_k_cliques(3) == 0
        assert list(index.iter_paths(3)) == []
