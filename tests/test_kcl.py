"""The KCL and KCL-Sample baselines."""

import pytest

from repro.baselines import kcl, kcl_sample
from repro.cliques import count_k_cliques_naive, densest_subgraph_bruteforce
from repro.core import SCTIndex, sctl
from repro.errors import InvalidParameterError
from repro.graph import Graph, gnp_graph


class TestKCL:
    def test_empty_graph(self):
        result = kcl(Graph(4), 3)
        assert result.vertices == []
        assert result.algorithm == "KCL"

    def test_invalid_iterations(self):
        with pytest.raises(InvalidParameterError):
            kcl(Graph.complete(4), 3, iterations=0)

    def test_finds_dense_block(self, k6_plus_k4):
        result = kcl(k6_plus_k4, 3, iterations=10)
        assert result.density == pytest.approx(20 / 6)

    @pytest.mark.parametrize("seed", range(5))
    def test_bounded_by_optimum_with_valid_upper_bound(self, seed):
        g = gnp_graph(11, 0.55, seed=seed)
        if count_k_cliques_naive(g, 3) == 0:
            pytest.skip("no triangle")
        _, optimal = densest_subgraph_bruteforce(g, 3)
        result = kcl(g, 3, iterations=15)
        assert result.density <= optimal + 1e-9
        assert result.upper_bound >= optimal - 1e-9

    def test_kcl_and_sctl_update_rules_agree(self, small_random):
        """Same update rule, same clique visit order (both enumerate all
        cliques); the extracted densities should coincide for the same T."""
        index = SCTIndex.build(small_random)
        ours = sctl(index, 3, iterations=12)
        theirs = kcl(small_random, 3, iterations=12)
        assert ours.density == pytest.approx(theirs.density, rel=0.15)

    def test_reported_count_is_true_count(self, caveman):
        result = kcl(caveman, 3, iterations=8)
        sub, _ = caveman.induced_subgraph(result.vertices)
        assert count_k_cliques_naive(sub, 3) == result.clique_count


class TestKCLSample:
    def test_empty_graph(self):
        assert kcl_sample(Graph(4), 3, sample_size=10).vertices == []

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            kcl_sample(Graph.complete(4), 3, sample_size=0)
        with pytest.raises(InvalidParameterError):
            kcl_sample(Graph.complete(4), 3, sample_size=5, iterations=0)

    def test_deterministic_given_seed(self, caveman):
        a = kcl_sample(caveman, 3, sample_size=30, iterations=5, seed=4)
        b = kcl_sample(caveman, 3, sample_size=30, iterations=5, seed=4)
        assert a.vertices == b.vertices

    def test_reservoir_size_capped(self, caveman):
        result = kcl_sample(caveman, 3, sample_size=10, iterations=3, seed=1)
        assert result.stats["sampled_cliques"] <= 10
        assert result.stats["total_cliques_seen"] == count_k_cliques_naive(caveman, 3)

    def test_density_recovered_on_original_graph(self, k6_plus_k4):
        result = kcl_sample(k6_plus_k4, 3, sample_size=500, iterations=10, seed=0)
        # sample covers everything -> recovers the K6
        assert result.density == pytest.approx(20 / 6)

    @pytest.mark.parametrize("seed", range(4))
    def test_bounded_by_optimum(self, seed):
        g = gnp_graph(11, 0.55, seed=seed)
        if count_k_cliques_naive(g, 3) == 0:
            pytest.skip("no triangle")
        _, optimal = densest_subgraph_bruteforce(g, 3)
        result = kcl_sample(g, 3, sample_size=100, iterations=10, seed=seed)
        assert result.density <= optimal + 1e-9
