"""Golden regression values: exact optima on the bundled datasets.

These constants were computed by SCTL*-Exact and certified by three
independent exact implementations (iterated min-cut, binary search, and
the scipy LP) — see ``bench_lp_crosscheck.py``.  Any change to the
generators, the index, or the solvers that shifts one of these values is
a regression (or an intentional dataset change that must update this
file).
"""

from fractions import Fraction

import pytest

from repro.core import SCTIndex, sctl_star, sctl_star_exact
from repro.datasets import load_dataset

GOLDEN = [
    # (dataset, k, optimal density, |S| of the found optimum)
    ("email", 5, Fraction(143, 1), 14),
    ("email", 9, Fraction(143, 1), 14),
    ("pokec", 4, Fraction(55, 1), 13),
    ("pokec", 6, Fraction(132, 1), 13),
    ("orkut", 4, Fraction(268, 13), 13),
    ("orkut", 6, Fraction(138, 13), 13),
    ("skitter", 3, Fraction(317, 17), 51),
    ("skitter", 5, Fraction(94, 7), 21),
    ("dblp", 8, Fraction(14535, 1), 22),
    ("youtube", 5, Fraction(66, 1), 12),
]


@pytest.mark.parametrize("name,k,density,size", GOLDEN)
def test_exact_optimum_matches_golden(name, k, density, size):
    graph = load_dataset(name)
    index = SCTIndex.build(graph)
    result = sctl_star_exact(
        graph, k, index=index, sample_size=20_000, iterations=8, seed=0
    )
    assert result.density_fraction == density
    assert result.size == size


@pytest.mark.parametrize("name,k,density,size", GOLDEN[:4])
def test_sctl_star_reaches_golden_density(name, k, density, size):
    """On these instances SCTL* (T=10) finds the optimum outright."""
    graph = load_dataset(name)
    index = SCTIndex.build(graph)
    result = sctl_star(index, k, iterations=10)
    assert result.density_fraction == density
