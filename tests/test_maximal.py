"""Bron-Kerbosch maximal clique enumeration against brute force."""

import itertools

import pytest

from repro.cliques import iter_maximal_cliques, max_clique_size, maximum_clique
from repro.graph import Graph, gnp_graph, grid_graph


def _maximal_bruteforce(graph):
    out = set()
    n = graph.n
    for size in range(1, n + 1):
        for combo in itertools.combinations(range(n), size):
            if graph.is_clique(combo):
                extendable = any(
                    graph.is_clique(combo + (w,))
                    for w in range(n)
                    if w not in combo
                )
                if not extendable:
                    out.add(combo)
    return out


class TestMaximalCliques:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_bruteforce(self, seed):
        g = gnp_graph(12, 0.45, seed=seed)
        assert set(iter_maximal_cliques(g)) == _maximal_bruteforce(g)

    def test_complete_graph_single_maximal(self):
        g = Graph.complete(7)
        assert list(iter_maximal_cliques(g)) == [tuple(range(7))]

    def test_empty_graph(self):
        assert max_clique_size(Graph(0)) == 0
        assert maximum_clique(Graph(0)) == []

    def test_edgeless_graph(self):
        g = Graph(4)
        assert set(iter_maximal_cliques(g)) == {(0,), (1,), (2,), (3,)}
        assert max_clique_size(g) == 1

    def test_grid_max_clique_is_edge(self):
        assert max_clique_size(grid_graph(5, 5)) == 2

    def test_maximum_clique_is_clique_of_max_size(self):
        g = gnp_graph(15, 0.5, seed=3)
        clique = maximum_clique(g)
        assert g.is_clique(clique)
        assert len(clique) == max_clique_size(g)
