"""The binary-search exact framework vs the iterated-cut solver."""

from fractions import Fraction

import pytest

from repro.cliques import densest_subgraph_bruteforce, iter_k_cliques_naive
from repro.flow import exact_densest_binary_search, exact_densest_from_cliques
from repro.graph import Graph, gnp_graph


class TestBinarySearchExact:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_agrees_with_iterated_cut(self, seed, k):
        g = gnp_graph(10, 0.5, seed=seed)
        cliques = list(iter_k_cliques_naive(g, k))
        verts = list(g.vertices())
        _, via_cuts = exact_densest_from_cliques(cliques, verts)
        _, via_bisect = exact_densest_binary_search(cliques, verts)
        assert via_cuts == via_bisect

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_bruteforce(self, seed):
        g = gnp_graph(10, 0.5, seed=seed)
        cliques = list(iter_k_cliques_naive(g, 3))
        solution, density = exact_densest_binary_search(
            cliques, list(g.vertices())
        )
        _, expected = densest_subgraph_bruteforce(g, 3)
        assert float(density) == pytest.approx(expected)
        if solution:
            inside = set(solution)
            count = sum(1 for c in cliques if all(v in inside for v in c))
            assert Fraction(count, len(solution)) == density

    def test_empty_inputs(self):
        assert exact_densest_binary_search([], [0, 1]) == ([], Fraction(0))
        assert exact_densest_binary_search([(0, 1)], []) == ([], Fraction(0))

    def test_lower_bound_hint_preserves_result(self, k6_plus_k4):
        cliques = list(iter_k_cliques_naive(k6_plus_k4, 3))
        verts = list(k6_plus_k4.vertices())
        cold = exact_densest_binary_search(cliques, verts)
        hinted = exact_densest_binary_search(cliques, verts, lower=Fraction(3))
        assert cold[1] == hinted[1] == Fraction(20, 6)

    def test_single_clique_graph(self):
        g = Graph.complete(3)
        cliques = list(iter_k_cliques_naive(g, 3))
        solution, density = exact_densest_binary_search(cliques, [0, 1, 2])
        assert solution == [0, 1, 2]
        assert density == Fraction(1, 3)
