"""The versioned result contract: repro.results / repro/result-v1."""

import dataclasses
import json

import pytest

import repro
from repro.errors import InvalidParameterError
from repro.graph import relaxed_caveman_graph
from repro.obs.validate import validate_result
from repro.results import (
    RESULT_SCHEMA,
    DenseSubgraphResult,
    PartialResult,
)


def make_result(**overrides):
    kwargs = dict(
        vertices=[1, 2, 3, 4],
        clique_count=4,
        k=3,
        algorithm="SCTL*",
        iterations=7,
        upper_bound=1.5,
        exact=False,
    )
    kwargs.update(overrides)
    return DenseSubgraphResult(**kwargs)


class TestContract:
    def test_legacy_name_is_the_same_class(self):
        assert repro.DensestSubgraphResult is repro.DenseSubgraphResult
        assert repro.DenseSubgraphResult is DenseSubgraphResult

    def test_frozen(self):
        result = make_result()
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.k = 9

    def test_timings_stay_mutable_and_excluded_from_equality(self):
        a = make_result()
        b = make_result()
        a.timings["total_s"] = 1.23
        assert a == b

    def test_stats_excluded_from_equality(self):
        # instrumentation, like timings, is not part of a result's identity
        assert make_result(stats={"weights": [1, 2]}) == make_result()

    def test_method_normalizes_algorithm_name(self):
        assert make_result(algorithm="SCTL*-Exact").method == "sctl*-exact"
        assert make_result(algorithm="KCL Sample").method == "kclsample"

    def test_density_is_exact(self):
        result = make_result(vertices=[1, 2, 3], clique_count=1)
        assert result.density_fraction.numerator == 1
        assert result.density_fraction.denominator == 3

    def test_tuple_unpacking_warns_once_per_unpack(self):
        result = make_result()
        with pytest.warns(DeprecationWarning, match="docs/api.md"):
            vertices, density = result
        assert vertices == result.vertices
        assert density == result.density


class TestWireEncoding:
    def test_schema_field_first(self):
        payload = make_result().to_dict()
        assert next(iter(payload)) == "schema"
        assert payload["schema"] == RESULT_SCHEMA

    def test_round_trip(self):
        result = make_result()
        back = DenseSubgraphResult.from_json(result.to_json())
        assert back == result
        assert not back.is_partial

    def test_round_trip_partial(self):
        partial = PartialResult(
            vertices=[5, 6], clique_count=1, k=3, algorithm="SCTL",
            reason="deadline", stage="refine/3",
        )
        payload = partial.to_dict()
        assert payload["partial"] is True
        back = DenseSubgraphResult.from_dict(payload)
        assert isinstance(back, PartialResult)
        assert back.reason == "deadline"
        assert back.stage == "refine/3"
        assert "[partial: deadline at refine/3]" in back.summary()

    def test_stats_excluded_unless_asked(self):
        result = make_result(stats={"weights": [1, 2]})
        assert "stats" not in result.to_dict()
        assert result.to_dict(include_stats=True)["stats"] == {
            "weights": [1, 2]
        }

    def test_unknown_schema_rejected(self):
        payload = make_result().to_dict()
        payload["schema"] = "repro/result-v99"
        with pytest.raises(InvalidParameterError, match="result-v99"):
            DenseSubgraphResult.from_dict(payload)

    def test_missing_required_field_rejected(self):
        payload = make_result().to_dict()
        del payload["vertices"]
        with pytest.raises(InvalidParameterError, match="vertices"):
            DenseSubgraphResult.from_dict(payload)

    def test_unknown_sibling_keys_ignored(self):
        payload = make_result().to_dict()
        payload["query_time_s"] = 0.25  # the CLI adds this
        assert DenseSubgraphResult.from_dict(payload) == make_result()


class TestEntryPointsReturnTheContract:
    @pytest.fixture(scope="class")
    def graph(self):
        return relaxed_caveman_graph(4, 6, 0.1, seed=3)

    @pytest.mark.parametrize(
        "method", ["sctl", "sctl*", "sctl*-sample", "sctl*-exact", "kcl"]
    )
    def test_facade_returns_dense_subgraph_result(self, graph, method):
        result = repro.densest_subgraph(graph, 3, method=method)
        assert isinstance(result, DenseSubgraphResult)
        assert validate_result(result.to_dict()) == []
        # every entry point's result survives the wire both ways
        assert DenseSubgraphResult.from_json(result.to_json()) == result
        payload = result.to_dict()
        assert DenseSubgraphResult.from_dict(payload).to_dict() == payload

    def test_facade_stamps_timings(self, graph):
        result = repro.densest_subgraph(graph, 3, method="sctl*")
        assert result.timings["total_s"] > 0
        assert result.timings["index_build_s"] > 0

    def test_no_index_build_timing_when_index_supplied(self, graph):
        index = repro.SCTIndex.build(graph)
        result = repro.densest_subgraph(graph, 3, method="sctl*", index=index)
        assert "index_build_s" not in result.timings
        assert result.timings["total_s"] > 0


class TestValidator:
    def test_accepts_good_payload(self):
        assert validate_result(make_result().to_dict()) == []

    def test_rejects_size_mismatch(self):
        payload = make_result().to_dict()
        payload["size"] = 99
        assert any("size" in err for err in validate_result(payload))

    def test_rejects_density_mismatch(self):
        payload = make_result().to_dict()
        payload["density"] = 123.0
        assert any("density" in err for err in validate_result(payload))

    def test_rejects_unknown_schema(self):
        assert any(
            "unknown payload schema" in err
            for err in validate_result({"schema": "repro/result-v99"})
        )

    def test_validator_main_on_json_file(self, tmp_path, capsys):
        from repro.obs.validate import main

        path = tmp_path / "result.json"
        path.write_text(json.dumps(make_result().to_dict()))
        assert main(["--result", str(path)]) == 0
        bad = tmp_path / "bad.json"
        payload = make_result().to_dict()
        payload["size"] = 99
        bad.write_text(json.dumps(payload))
        assert main(["--result", str(bad)]) == 1
