"""Streaming mode vs pre-collected ``paths=`` mode: results must be identical.

The SCTL family now streams root-to-leaf paths off the index per refinement
pass instead of materialising them up front.  ``iter_paths`` traversal order
is deterministic, so every sweep of an ``SCTPathView`` replays the exact
sequence a collected list would — streaming must therefore change *nothing*
observable: same vertices, same counts, same stats, same densities.
"""

import pytest

from repro.core import SCTIndex, sctl, sctl_plus, sctl_star, sctl_star_sample


def _assert_identical(streamed, collected):
    assert streamed.vertices == collected.vertices
    assert streamed.clique_count == collected.clique_count
    assert streamed.density_fraction == collected.density_fraction
    assert streamed.iterations == collected.iterations
    assert streamed.stats == collected.stats


class TestSctlStarParity:
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_small_random(self, small_random, k):
        index = SCTIndex.build(small_random)
        streamed = sctl_star(index, k, iterations=5)
        collected = sctl_star(index, k, iterations=5, paths=index.collect_paths(k))
        _assert_identical(streamed, collected)

    @pytest.mark.parametrize("k", [3, 4])
    def test_caveman(self, caveman, k):
        index = SCTIndex.build(caveman)
        streamed = sctl_star(index, k, iterations=4)
        collected = sctl_star(index, k, iterations=4, paths=index.collect_paths(k))
        _assert_identical(streamed, collected)


class TestSctlStarSampleParity:
    @pytest.mark.parametrize("k", [3, 4])
    @pytest.mark.parametrize("seed", [0, 11])
    def test_same_sample_same_result(self, small_random, k, seed):
        index = SCTIndex.build(small_random)
        streamed = sctl_star_sample(
            index, k, sample_size=200, iterations=4, seed=seed
        )
        collected = sctl_star_sample(
            index, k, sample_size=200, iterations=4, seed=seed,
            paths=index.collect_paths(k),
        )
        _assert_identical(streamed, collected)

    def test_sample_smaller_than_population(self, caveman):
        # sample_size below the clique count exercises the allocation RNG:
        # the streamed two-pass draw must consume it identically
        index = SCTIndex.build(caveman)
        k = 3
        assert index.count_k_cliques(k) > 50
        streamed = sctl_star_sample(index, k, sample_size=50, iterations=3, seed=5)
        collected = sctl_star_sample(
            index, k, sample_size=50, iterations=3, seed=5,
            paths=index.collect_paths(k),
        )
        _assert_identical(streamed, collected)


class TestSctlFamilyParity:
    @pytest.mark.parametrize("k", [3, 4])
    def test_sctl(self, small_random, k):
        index = SCTIndex.build(small_random)
        streamed = sctl(index, k, iterations=4)
        collected = sctl(index, k, iterations=4, paths=index.collect_paths(k))
        _assert_identical(streamed, collected)

    @pytest.mark.parametrize("k", [3, 4])
    def test_sctl_plus(self, small_random, k):
        index = SCTIndex.build(small_random)
        streamed = sctl_plus(index, k, iterations=4)
        collected = sctl_plus(index, k, iterations=4, paths=index.collect_paths(k))
        _assert_identical(streamed, collected)


class TestPathViewReiteration:
    def test_view_replays_identically(self, small_random):
        index = SCTIndex.build(small_random)
        view = index.path_view(4)
        first = [(p.holds, p.pivots) for p in view]
        second = [(p.holds, p.pivots) for p in view]
        assert first == second
        assert first == [(p.holds, p.pivots) for p in index.iter_paths(4)]
        assert first == [
            (p.holds, p.pivots) for p in index.collect_paths(4)
        ]
