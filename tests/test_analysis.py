"""Near-clique extraction, edge prediction and evaluation metrics."""

import pytest

from repro.analysis import (
    NearClique,
    extract_near_clique,
    f1_score,
    jaccard,
    precision_recall,
    predict_missing_edges,
)
from repro.errors import InvalidParameterError
from repro.graph import Graph
from repro.graph.generators import planted_near_cliques_graph


@pytest.fixture
def clique_minus_one_edge():
    """K6 with the edge (0, 1) removed, plus an isolated tail."""
    edges = [
        (i, j) for i in range(6) for j in range(i + 1, 6) if (i, j) != (0, 1)
    ]
    edges += [(6, 7)]
    return Graph(8, edges)


class TestPredictMissingEdges:
    def test_single_missing_edge_found(self, clique_minus_one_edge):
        ranked = predict_missing_edges(clique_minus_one_edge, list(range(6)), 3)
        assert ranked[0][:2] == (0, 1)
        # completing (0,1) creates C(4,1) new triangles
        assert ranked[0][2] == 4

    def test_no_missing_edges_in_clique(self):
        g = Graph.complete(5)
        assert predict_missing_edges(g, list(range(5)), 3) == []

    def test_score_zero_when_no_common_neighbours(self):
        g = Graph(4, [(0, 1), (2, 3)])
        ranked = predict_missing_edges(g, [0, 1, 2, 3], 3)
        assert all(score == 0 for _, _, score in ranked)

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            predict_missing_edges(Graph(3), [0, 1, 2], 1)

    def test_ranking_order(self):
        # near-clique where one non-edge has more common neighbours
        edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (4, 0), (4, 1)]
        g = Graph(5, edges)
        ranked = predict_missing_edges(g, [0, 1, 2, 3, 4], 3)
        scores = [s for _, _, s in ranked]
        assert scores == sorted(scores, reverse=True)


class TestExtractNearClique:
    def test_detects_planted_region(self):
        g = planted_near_cliques_graph(
            80, [(9, 0.92)], background_p=0.01, seed=12
        )
        region = extract_near_clique(g, 3)
        assert set(region.members) <= set(range(9))
        assert region.completeness > 0.8
        assert region.density > 1.0

    def test_perfect_clique_flagged(self):
        g = Graph.complete(6)
        region = extract_near_clique(g, 3)
        assert region.is_clique
        assert region.completeness == 1.0
        assert region.missing_edges == []

    def test_missing_edges_inside_region(self, clique_minus_one_edge):
        region = extract_near_clique(clique_minus_one_edge, 3)
        assert (0, 1) in region.missing_edges
        for u, v in region.missing_edges:
            assert u in region.members and v in region.members

    def test_approximate_mode(self):
        g = planted_near_cliques_graph(60, [(8, 0.95)], background_p=0.01, seed=3)
        region = extract_near_clique(g, 3, exact=False)
        assert isinstance(region, NearClique)
        assert region.density > 0


class TestMetrics:
    def test_precision_recall_basics(self):
        precision, recall = precision_recall([1, 2, 3], [2, 3, 4, 5])
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(1 / 2)

    def test_empty_conventions(self):
        assert precision_recall([], [1]) == (1.0, 0.0)
        assert precision_recall([1], []) == (0.0, 1.0)

    def test_jaccard(self):
        assert jaccard([1, 2], [2, 3]) == pytest.approx(1 / 3)
        assert jaccard([], []) == 1.0
        assert jaccard([1], [1]) == 1.0

    def test_f1(self):
        assert f1_score([1, 2], [1, 2]) == 1.0
        assert f1_score([1], [2]) == 0.0
