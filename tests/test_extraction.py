"""Best-prefix extraction: the paths backend must agree with explicit cliques."""

import random

import pytest

from repro.cliques import iter_k_cliques_naive
from repro.core import SCTIndex, best_prefix_from_cliques, best_prefix_from_paths
from repro.graph import Graph, gnp_graph


class TestAgainstExplicitCliques:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_paths_backend_matches_cliques_backend(self, seed, k):
        g = gnp_graph(13, 0.5, seed=seed)
        index = SCTIndex.build(g)
        rng = random.Random(seed)
        weights = [rng.random() * 10 for _ in range(g.n)]
        from_paths = best_prefix_from_paths(index.collect_paths(k), weights, k)
        from_cliques = best_prefix_from_cliques(iter_k_cliques_naive(g, k), weights)
        assert from_paths.clique_count == from_cliques.clique_count
        assert from_paths.density_fraction == from_cliques.density_fraction
        assert from_paths.vertices == from_cliques.vertices

    def test_prefix_counts_are_true_subgraph_counts(self):
        g = gnp_graph(12, 0.5, seed=4)
        index = SCTIndex.build(g)
        weights = [g.degree(v) for v in g.vertices()]
        result = best_prefix_from_paths(index.collect_paths(3), weights, 3)
        sub, _ = g.induced_subgraph(result.vertices)
        from repro.cliques import count_k_cliques_naive

        assert count_k_cliques_naive(sub, 3) == result.clique_count


class TestEdgeCases:
    def test_no_cliques_gives_empty_prefix(self):
        g = Graph(4, [(0, 1)])
        index = SCTIndex.build(g)
        result = best_prefix_from_paths(index.collect_paths(3), [1, 2, 3, 4], 3)
        assert result.vertices == []
        assert result.clique_count == 0
        assert result.density == 0.0

    def test_restrict_to_subset(self):
        cliques = [(0, 1, 2), (3, 4, 5)]
        weights = [5, 5, 5, 9, 9, 9]
        full = best_prefix_from_cliques(cliques, weights)
        assert set(full.vertices) == {3, 4, 5}
        restricted = best_prefix_from_cliques(cliques, weights, restrict_to=[0, 1, 2])
        assert set(restricted.vertices) == {0, 1, 2}

    def test_restrict_excludes_straddling_cliques(self):
        cliques = [(0, 1, 2)]
        weights = [1.0, 1.0, 1.0]
        result = best_prefix_from_cliques(cliques, weights, restrict_to=[0, 1])
        assert result.clique_count == 0

    def test_tie_break_prefers_shorter_prefix(self):
        # two disjoint triangles with equal weights: density 1/3 at size 3
        # and at size 6; the shorter prefix must win
        cliques = [(0, 1, 2), (3, 4, 5)]
        weights = [2.0] * 6
        result = best_prefix_from_cliques(cliques, weights)
        assert len(result.vertices) == 3
