"""Graph statistics, differentially tested against networkx."""

import pytest

from repro.graph import Graph, gnp_graph, grid_graph
from repro.graph.stats import (
    average_clustering,
    degree_histogram,
    edge_density,
    local_clustering,
    summarize,
    transitivity,
    triangle_counts,
)


def _to_networkx(graph):
    nx = pytest.importorskip("networkx")
    g = nx.Graph()
    g.add_nodes_from(graph.vertices())
    g.add_edges_from(graph.edges())
    return nx, g


class TestTriangles:
    def test_complete_graph(self):
        counts = triangle_counts(Graph.complete(5))
        assert counts == [6] * 5  # C(4,2) per vertex

    def test_triangle_free(self):
        assert sum(triangle_counts(grid_graph(5, 5))) == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx(self, seed):
        g = gnp_graph(30, 0.25, seed=seed)
        nx, h = _to_networkx(g)
        expected = nx.triangles(h)
        counts = triangle_counts(g)
        for v in g.vertices():
            assert counts[v] == expected[v]


class TestClustering:
    @pytest.mark.parametrize("seed", range(4))
    def test_local_matches_networkx(self, seed):
        g = gnp_graph(25, 0.3, seed=seed)
        nx, h = _to_networkx(g)
        expected = nx.clustering(h)
        got = local_clustering(g)
        for v in g.vertices():
            assert got[v] == pytest.approx(expected[v])

    @pytest.mark.parametrize("seed", range(4))
    def test_transitivity_matches_networkx(self, seed):
        g = gnp_graph(25, 0.3, seed=seed)
        nx, h = _to_networkx(g)
        assert transitivity(g) == pytest.approx(nx.transitivity(h))

    def test_average_clustering_empty(self):
        assert average_clustering(Graph(0)) == 0.0


class TestSummaries:
    def test_degree_histogram(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert degree_histogram(g) == {3: 1, 1: 3}

    def test_edge_density_bounds(self):
        assert edge_density(Graph.complete(6)) == 1.0
        assert edge_density(Graph(6)) == 0.0
        assert edge_density(Graph(1)) == 0.0

    def test_summarize_complete(self):
        summary = summarize(Graph.complete(5))
        assert summary.n == 5
        assert summary.m == 10
        assert summary.triangles == 10
        assert summary.average_clustering == pytest.approx(1.0)
        assert summary.transitivity == pytest.approx(1.0)
        assert summary.edge_density == pytest.approx(1.0)
        assert len(summary.as_row()) == 9

    def test_summarize_empty(self):
        summary = summarize(Graph(0))
        assert summary.mean_degree == 0.0
        assert summary.triangles == 0
