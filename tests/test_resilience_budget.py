"""Unit tests for repro.resilience.budget (RunBudget / NullBudget)."""

import itertools
import signal

import pytest

from repro.errors import BudgetExhausted, ReproError, TimeoutExceeded
from repro.resilience import NULL_BUDGET, Budget, NullBudget, RunBudget


def counting_clock(start: int = 0):
    """A deterministic clock: each call advances time by one second."""
    counter = itertools.count(start)
    return lambda: next(counter)


class TestNullBudget:
    def test_never_active_never_exceeded(self):
        assert NULL_BUDGET.active is False
        assert NULL_BUDGET.exceeded() is None
        NULL_BUDGET.check("anywhere")  # no-op
        NULL_BUDGET.tick()
        assert NULL_BUDGET.remaining() is None

    def test_error_builds_generic_exception(self):
        exc = NULL_BUDGET.error("deadline", stage="s")
        assert isinstance(exc, BudgetExhausted)

    def test_satisfies_protocol(self):
        assert isinstance(NULL_BUDGET, Budget)
        assert isinstance(RunBudget(wall_seconds=1), Budget)

    def test_shared_instance(self):
        assert isinstance(NULL_BUDGET, NullBudget)


class TestRunBudgetActivation:
    def test_no_limits_means_inactive(self):
        assert RunBudget().active is False

    def test_any_limit_activates(self):
        assert RunBudget(wall_seconds=10).active is True
        assert RunBudget(max_iterations=3).active is True

    def test_cancel_activates(self):
        budget = RunBudget()
        budget.cancel("user request")
        assert budget.active is True
        assert budget.exceeded() == "cancelled"
        assert budget.cancel_reason == "user request"

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            RunBudget(wall_seconds=-1)
        with pytest.raises(ValueError):
            RunBudget(max_iterations=0)


class TestDeadline:
    def test_deterministic_deadline(self):
        # construction consumes tick 0; deadline is at clock time 5
        budget = RunBudget(wall_seconds=5, clock=counting_clock())
        assert budget.exceeded() is None  # t=1
        assert budget.exceeded() is None  # t=2
        assert budget.exceeded() is None  # t=3
        assert budget.exceeded() is None  # t=4
        assert budget.exceeded() == "deadline"  # t=5

    def test_remaining_counts_down(self):
        budget = RunBudget(wall_seconds=10, clock=counting_clock())
        first = budget.remaining()
        second = budget.remaining()
        assert first == 10 - 1
        assert second == 10 - 2

    def test_check_raises_timeout(self):
        budget = RunBudget(wall_seconds=0)
        with pytest.raises(TimeoutExceeded) as excinfo:
            budget.check("index/build")
        assert excinfo.value.reason == "deadline"
        assert excinfo.value.stage == "index/build"
        assert excinfo.value.budget_seconds == 0


class TestIterationCap:
    def test_exceeded_after_cap_ticks(self):
        budget = RunBudget(max_iterations=2)
        assert budget.exceeded() is None
        budget.tick()
        assert budget.exceeded() is None
        budget.tick()
        assert budget.exceeded() == "max_iterations"
        assert budget.iterations == 2

    def test_check_raises_budget_exhausted(self):
        budget = RunBudget(max_iterations=1)
        budget.tick()
        with pytest.raises(BudgetExhausted) as excinfo:
            budget.check("refine/iteration/2")
        assert excinfo.value.reason == "max_iterations"
        assert not isinstance(excinfo.value, TimeoutExceeded)


class TestErrorTypes:
    def test_timeout_is_budget_exhausted(self):
        assert issubclass(TimeoutExceeded, BudgetExhausted)
        assert issubclass(BudgetExhausted, ReproError)

    def test_error_messages_carry_context(self):
        budget = RunBudget(wall_seconds=7)
        exc = budget.error("deadline", stage="exact/flow_round/2")
        assert "7" in str(exc)
        assert "exact/flow_round/2" in str(exc)
        budget.cancel("shutting down")
        exc = budget.error("cancelled")
        assert "shutting down" in str(exc)


class TestSignalHook:
    def test_signal_cancels_and_restores_handler(self):
        budget = RunBudget()
        previous = signal.getsignal(signal.SIGTERM)
        with budget.on_signal(signal.SIGTERM):
            assert signal.getsignal(signal.SIGTERM) is not previous
            signal.raise_signal(signal.SIGTERM)
            assert budget.cancelled is True
            assert "SIGTERM" in budget.cancel_reason
        assert signal.getsignal(signal.SIGTERM) is previous
        assert budget.exceeded() == "cancelled"

    def test_handlers_restored_on_exception(self):
        budget = RunBudget()
        previous = signal.getsignal(signal.SIGTERM)
        with pytest.raises(RuntimeError):
            with budget.on_signal(signal.SIGTERM):
                raise RuntimeError("boom")
        assert signal.getsignal(signal.SIGTERM) is previous
