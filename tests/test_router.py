"""RouterService: placement, failover, replication, fleet-wide updates.

These tests run real worker :class:`~repro.service.ReproService`
processes *in-process* (threaded HTTP servers on loopback port 0) and a
real :class:`~repro.service.RouterService` in front, so every forward
crosses a genuine socket — but everything stays in one pytest process
with no subprocess machinery (that end of the story lives in
``tests/test_fleet.py`` and the CI fleet-smoke job).
"""

import json
import threading

import pytest

from repro.obs.validate import validate_result
from repro.service import (
    RouterConfig,
    ServiceClient,
    ServiceConfig,
    make_router,
    make_server,
)
from repro.service.hashring import graph_string, key_string, request_key


def two_clique_graph_file(tmp_path, name="two_clique.txt"):
    """Two K5s joined by a bridge — cheap and update-friendly."""
    edges = []
    for block in (range(0, 5), range(6, 11)):
        block = list(block)
        for i, u in enumerate(block):
            for v in block[i + 1:]:
                edges.append((u, v))
    edges.append((5, 0))
    edges.append((5, 6))
    path = tmp_path / name
    path.write_text(
        "\n".join(f"{u} {v}" for u, v in edges) + "\n", encoding="utf-8"
    )
    return str(path)


class Fleet:
    """N in-process workers + a router, torn down deterministically."""

    def __init__(self, n=3, router_config=None, worker_id_prefix="w"):
        self.servers = []
        self.services = []
        self.workers = {}
        for i in range(n):
            server, service = make_server(
                ServiceConfig(port=0, worker_id=f"{worker_id_prefix}{i}")
            )
            threading.Thread(
                target=server.serve_forever, daemon=True
            ).start()
            self.servers.append(server)
            self.services.append(service)
            port = server.server_address[1]
            self.workers[f"{worker_id_prefix}{i}"] = \
                f"http://127.0.0.1:{port}"
        self.router_server, self.router = make_router(
            router_config or RouterConfig(port=0), dict(self.workers)
        )
        threading.Thread(
            target=self.router_server.serve_forever, daemon=True
        ).start()
        self.endpoint = (
            f"http://127.0.0.1:{self.router_server.server_address[1]}"
        )

    def kill_worker(self, worker_id):
        """Hard-stop one worker's HTTP server (socket goes dead)."""
        index = list(self.workers).index(worker_id)
        self.servers[index].shutdown()
        self.servers[index].server_close()

    def close(self):
        self.router_server.shutdown()
        self.router_server.server_close()
        for server in self.servers:
            try:
                server.shutdown()
                server.server_close()
            except OSError:
                pass


@pytest.fixture
def fleet():
    f = Fleet(3)
    yield f
    f.close()


def owner_of(fleet, obj):
    return fleet.router.ring.owner(key_string(request_key(obj)))


class TestRouting:
    def test_forward_reaches_the_owner(self, fleet):
        client = ServiceClient(fleet.endpoint, max_retries=2)
        out = client.query(dataset="email", k=3)
        assert out.ok
        assert out.served_by == owner_of(fleet, {"dataset": "email"})
        assert out.get("schema") == "repro/service-v1.1"
        assert isinstance(out.ring_epoch, int)
        assert validate_result(out) == []

    def test_each_key_resident_in_exactly_one_worker(self, fleet):
        client = ServiceClient(fleet.endpoint, max_retries=2)
        requests = [
            {"dataset": "email", "k": 3},
            {"dataset": "email", "k": 3, "threshold": 2},
            {"dataset": "gowalla", "k": 3},
            {"dataset": "wikitalk", "k": 4},
        ]
        for obj in requests:
            assert client.query(**obj).ok
        # each canonical key's index lives on exactly one worker
        for obj in requests:
            key = request_key(obj)
            holders = [
                service.config.worker_id
                for service in fleet.services
                if key in [k for k in service._indices.keys()]
            ]
            assert holders == [owner_of(fleet, obj)]

    def test_identical_keys_share_one_index(self, fleet):
        client = ServiceClient(fleet.endpoint, max_retries=2)
        a = client.query(dataset="email", k=3,
                         build_options={"x": 1, "y": 2})
        b = client.query(dataset="email", k=4,
                         build_options={"y": 2, "x": 1})
        assert a.ok and b.ok
        assert a.served_by == b.served_by  # same canonical key

    def test_router_rejects_malformed_requests(self, fleet):
        client = ServiceClient(fleet.endpoint, max_retries=0)
        env = client.rpc("query", k=3)  # no graph source at all
        assert env.code == 2
        assert "dataset" in env.error
        assert validate_result(env) == []

    def test_stats_and_topology_validate(self, fleet):
        client = ServiceClient(fleet.endpoint, max_retries=0)
        stats = client.stats()
        assert stats.get("stats", {}).get("schema") == \
            "repro/router-stats-v1"
        assert validate_result(stats) == []
        topo = client.topology()
        payload = topo["topology"]
        assert payload["schema"] == "repro/topology-v1"
        assert {w["id"] for w in payload["workers"]} == set(fleet.workers)
        assert validate_result(topo) == []

    def test_metrics_exposition_covers_router_series(self, fleet):
        client = ServiceClient(fleet.endpoint, max_retries=2)
        assert client.query(dataset="email", k=3).ok
        text = client.metrics()
        assert "repro_router_requests_query_total" in text
        assert "repro_service_latency_query_cold" in text


class TestFailover:
    def test_worker_death_reassigns_and_recovers(self, fleet):
        client = ServiceClient(fleet.endpoint, max_retries=3)
        obj = {"dataset": "email", "k": 3}
        first = client.query(**obj)
        assert first.ok
        victim = first.served_by
        epoch_before = fleet.router.ring.epoch
        fleet.kill_worker(victim)

        second = client.query(**obj)
        assert second.ok
        assert second.served_by != victim
        assert second.served_by in fleet.workers
        # the ring reassigned: victim is gone, epoch moved
        assert victim not in fleet.router.ring
        assert second.ring_epoch > epoch_before
        assert validate_result(second) == []

    def test_all_workers_dead_yields_an_error_envelope(self, fleet):
        for worker_id in list(fleet.workers):
            fleet.kill_worker(worker_id)
        client = ServiceClient(fleet.endpoint, max_retries=0)
        env = client.rpc("query", dataset="email", k=3)
        assert env.code == 1
        assert not env.ok
        assert validate_result(env) == []


class TestFleetUpdates:
    def test_update_fans_out_and_stays_monotonic(self, fleet, tmp_path):
        path = two_clique_graph_file(tmp_path)
        client = ServiceClient(fleet.endpoint, max_retries=2)
        assert client.query(path=path, k=5).ok

        up1 = client.update(deletes=[[6, 7]], path=path)
        assert up1.applied and up1.graph_version == 1
        up2 = client.update(inserts=[[6, 7]], deletes=[[7, 8]], path=path)
        assert up2.applied and up2.graph_version == 2
        assert up2.get("fanout") == {"replicas": [], "dropped": []}
        assert validate_result(up2) == []

        # the router recorded a replayable log for this graph
        graph = graph_string(key_string(request_key({"path": path})))
        assert len(fleet.router._update_log[graph]) == 2

        warm = client.query(path=path, k=5)
        assert warm.ok and warm.graph_version == 2

    def test_replica_promotion_replays_updates(self, fleet, tmp_path):
        path = two_clique_graph_file(tmp_path)
        client = ServiceClient(fleet.endpoint, max_retries=2)
        obj = {"path": path, "k": 5}
        assert client.query(**obj).ok
        assert client.update(deletes=[[6, 7]], path=path).applied

        # drive the key hot, then let the poll loop promote a replica
        for _ in range(fleet.router.config.hot_key_threshold + 2):
            assert client.query(**obj).ok
        fleet.router.poll_once()

        key = key_string(request_key(obj))
        replicas = fleet.router._replicas.get(key)
        assert replicas, "hot key was not promoted"
        owner = fleet.router.ring.owner(key)
        assert owner not in replicas  # replica set disjoint from owner
        # the replica was converged to the owner's graph_version before
        # being marked servable
        graph = graph_string(key)
        for worker_id in replicas:
            assert fleet.router._converged[(worker_id, graph)] == 1

        # a later update fans out to the replica too
        up = client.update(inserts=[[6, 7]], path=path)
        assert up.applied and up.graph_version == 2
        assert up["fanout"]["replicas"] == replicas

        # reads round-robin over owner + replica; cached answers may
        # echo the version they were computed against (that is the v1
        # contract), but nothing may report a version that never existed
        served, versions = set(), set()
        for _ in range(6):
            out = client.query(**obj)
            assert out.ok
            served.add(out.served_by)
            versions.add(out.graph_version)
        assert served == {owner, *replicas}
        assert versions <= {1, 2}

        # a FRESH result key forces a compute on whichever worker
        # serves it: owner and replica must both be at version 2
        fresh_versions = {
            client.query(path=path, k=4).graph_version for _ in range(6)
        }
        assert fresh_versions == {2}

    def test_owner_death_fails_over_to_warm_replica(self, fleet, tmp_path):
        path = two_clique_graph_file(tmp_path)
        client = ServiceClient(fleet.endpoint, max_retries=3)
        obj = {"path": path, "k": 5}
        assert client.query(**obj).ok
        assert client.update(deletes=[[6, 7]], path=path).applied
        for _ in range(fleet.router.config.hot_key_threshold + 2):
            client.query(**obj)
        fleet.router.poll_once()

        key = key_string(request_key(obj))
        owner = fleet.router.ring.owner(key)
        replicas = fleet.router._replicas.get(key)
        assert replicas
        # the replica sits at preference[1]: killing the owner makes it
        # the new owner, with the post-update index already warm
        assert fleet.router.ring.preference(key, 2)[1] == replicas[0]
        fleet.kill_worker(owner)
        out = client.query(**obj)
        assert out.ok
        assert out.served_by == replicas[0]
        assert out.graph_version == 1  # replayed history survived


class TestHotKeyDemotion:
    def test_cold_key_loses_its_replica(self, fleet):
        client = ServiceClient(fleet.endpoint, max_retries=2)
        obj = {"dataset": "email", "k": 3}
        for _ in range(fleet.router.config.hot_key_threshold + 2):
            client.query(**obj)
        fleet.router.poll_once()
        key = key_string(request_key(obj))
        assert fleet.router._replicas.get(key)
        # quiet for cold_windows polls -> demoted (the promotion's own
        # build request counts as one last hit, hence the extra poll)
        for _ in range(fleet.router.config.hot_key_cold_windows + 1):
            fleet.router.poll_once()
        assert key not in fleet.router._replicas


class TestDraining:
    def test_draining_router_refuses_with_valid_envelopes(self, fleet):
        fleet.router.drain()
        client = ServiceClient(fleet.endpoint, max_retries=0)
        status, payload = client.healthz()
        assert status == 503
        # over HTTP a draining router answers 503 (retryable); the
        # envelope itself stays well-formed
        env = fleet.router.handle_request(
            {"op": "query", "dataset": "email", "k": 3}
        )
        assert env["code"] == 1 and "draining" in env["error"]
        assert validate_result(env) == []
