"""CLI coverage for the resilience flags and exit codes."""

import pytest

import repro.cli as cli
from repro.cli import EXIT_EXHAUSTED, EXIT_PARTIAL, main
from repro.core import SCTIndex
from repro.core.density import PartialResult
from repro.errors import TimeoutExceeded
from repro.graph import gnp_graph, write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "graph.txt"
    write_edge_list(gnp_graph(30, 0.35, seed=1), path)
    return str(path)


class TestGenerousBudget:
    def test_query_succeeds_within_budget(self, graph_file, capsys):
        assert main(["query", graph_file, "-k", "3", "--time-budget", "1e9"]) == 0
        assert "SCTL*" in capsys.readouterr().out

    def test_build_succeeds_within_budget(self, graph_file, tmp_path, capsys):
        out_file = str(tmp_path / "g.sct")
        code = main(
            ["build-index", graph_file, "-o", out_file, "--time-budget", "1e9"]
        )
        assert code == 0
        assert SCTIndex.load(out_file).n_vertices == 30


class TestExhaustedExitCodes:
    def test_query_zero_budget_exits_3(self, graph_file, capsys):
        code = main(["query", graph_file, "-k", "3", "--time-budget", "0"])
        assert code == EXIT_EXHAUSTED
        err = capsys.readouterr().err
        assert "budget exhausted" in err

    def test_build_zero_budget_exits_3(self, graph_file, tmp_path, capsys):
        out_file = str(tmp_path / "g.sct")
        code = main(
            ["build-index", graph_file, "-o", out_file, "--time-budget", "0"]
        )
        assert code == EXIT_EXHAUSTED
        assert "budget exhausted" in capsys.readouterr().err

    def test_build_exhausted_mentions_resume(self, graph_file, tmp_path, capsys):
        out_file = str(tmp_path / "g.sct")
        ckpt_dir = str(tmp_path / "ckpt")
        code = main([
            "build-index", graph_file, "-o", out_file,
            "--time-budget", "0", "--checkpoint", ckpt_dir,
        ])
        assert code == EXIT_EXHAUSTED
        assert "--resume" in capsys.readouterr().err

    def test_valid_partial_exits_4(self, graph_file, capsys, monkeypatch):
        # a deterministic stand-in for "budget ran out after some progress"
        def fake_densest_subgraph(graph, k, **kwargs):
            return PartialResult(
                vertices=[0, 1, 2], clique_count=1, k=k, algorithm="SCTL*",
                iterations=2, reason="deadline", stage="refine/iteration/3",
            )

        monkeypatch.setattr(cli, "densest_subgraph", fake_densest_subgraph)
        code = main(["query", graph_file, "-k", "3", "--time-budget", "1e9"])
        assert code == EXIT_PARTIAL
        captured = capsys.readouterr()
        assert "[partial: deadline" in captured.out
        assert "best result achieved" in captured.err

    def test_stray_budget_error_exits_3(self, graph_file, capsys, monkeypatch):
        def raising(graph, k, **kwargs):
            raise TimeoutExceeded(1.5, stage="somewhere")

        monkeypatch.setattr(cli, "densest_subgraph", raising)
        code = main(["query", graph_file, "-k", "3"])
        assert code == EXIT_EXHAUSTED
        assert "budget exhausted" in capsys.readouterr().err


class TestCheckpointResumeFlow:
    def test_build_resume_completes_to_identical_index(
        self, graph_file, tmp_path, capsys
    ):
        direct = str(tmp_path / "direct.sct")
        assert main(["build-index", graph_file, "-o", direct]) == 0

        resumed = str(tmp_path / "resumed.sct")
        ckpt_dir = str(tmp_path / "ckpt")
        code = main([
            "build-index", graph_file, "-o", resumed,
            "--time-budget", "0", "--checkpoint", ckpt_dir,
        ])
        assert code == EXIT_EXHAUSTED
        code = main([
            "build-index", graph_file, "-o", resumed,
            "--checkpoint", ckpt_dir, "--resume",
        ])
        assert code == 0
        with open(direct, "rb") as a, open(resumed, "rb") as b:
            assert a.read() == b.read()

    def test_query_accepts_checkpoint_flags(self, graph_file, tmp_path, capsys):
        ckpt_dir = str(tmp_path / "ckpt")
        code = main([
            "query", graph_file, "-k", "3", "--checkpoint", ckpt_dir,
        ])
        assert code == 0

    def test_unbudgeted_run_unchanged(self, graph_file, capsys):
        """The default path (no resilience flags) behaves exactly as before."""

        def stable(text):  # drop the wall-clock line, keep the result lines
            return [l for l in text.splitlines() if not l.startswith("query time")]

        assert main(["query", graph_file, "-k", "3"]) == 0
        baseline = stable(capsys.readouterr().out)
        assert main(["query", graph_file, "-k", "3"]) == 0
        assert stable(capsys.readouterr().out) == baseline
