"""The facade method registry: lookups, aliases, extension."""

import pytest

from repro import (
    InvalidParameterError,
    available_methods,
    densest_subgraph,
    get_method,
    greedy_peeling,
    register_method,
)
from repro.registry import MethodSpec, normalize_method_name

BUILTINS = [
    "sctl", "sctl+", "sctl*", "sctl*-sample", "sctl*-exact",
    "kcl", "kcl-sample", "kcl-exact", "coreapp", "coreexact", "peel",
]


@pytest.fixture(autouse=True)
def _restore_registry():
    """Keep test registrations from leaking across tests."""
    from repro import registry

    saved_methods = dict(registry._REGISTRY)
    saved_aliases = dict(registry._ALIASES)
    yield
    registry._REGISTRY.clear()
    registry._REGISTRY.update(saved_methods)
    registry._ALIASES.clear()
    registry._ALIASES.update(saved_aliases)


class TestBuiltins:
    def test_every_legacy_method_name_registered(self):
        names = available_methods()
        for name in BUILTINS:
            assert name in names, name

    def test_available_methods_sorted(self):
        names = available_methods()
        assert names == sorted(names)

    def test_specs_carry_descriptions(self):
        for name in BUILTINS:
            spec = get_method(name)
            assert isinstance(spec, MethodSpec)
            assert spec.description

    def test_needs_index_partition(self):
        for name in BUILTINS:
            expected = name.startswith("sctl")
            assert get_method(name).needs_index is expected, name


class TestLookup:
    def test_normalization(self):
        assert normalize_method_name(" SCTL * ") == "sctl*"
        assert normalize_method_name("sctl_star") == "sctl-star"
        assert normalize_method_name("CoreApp") == "coreapp"

    @pytest.mark.parametrize(
        "alias,canonical",
        [
            ("sctl-star", "sctl*"),
            ("sctl_star", "sctl*"),
            ("SCTL-Star-Sample", "sctl*-sample"),
            ("sctl-star-exact", "sctl*-exact"),
            ("sctl-plus", "sctl+"),
            ("core-app", "coreapp"),
            ("core_exact", "coreexact"),
            ("peeling", "peel"),
            ("greedy-peeling", "peel"),
        ],
    )
    def test_aliases(self, alias, canonical):
        assert get_method(alias).name == canonical

    def test_unknown_method_lists_valid_names(self):
        with pytest.raises(InvalidParameterError) as excinfo:
            get_method("does-not-exist")
        message = str(excinfo.value)
        for name in BUILTINS:
            assert name in message

    def test_non_string_rejected(self):
        with pytest.raises(InvalidParameterError):
            get_method(42)


class TestRegistration:
    @staticmethod
    def _fn(graph, k, index=None, iterations=10, sample_size=None, seed=0,
            options=None):
        return greedy_peeling(graph, k)

    def test_register_and_dispatch(self, caveman):
        register_method("custom", self._fn, aliases=("my-custom",),
                        description="test method")
        assert "custom" in available_methods()
        expected = greedy_peeling(caveman, 3).vertices
        assert densest_subgraph(caveman, 3, method="custom").vertices == expected
        assert densest_subgraph(caveman, 3, method="My_Custom").vertices == expected

    def test_duplicate_rejected_without_overwrite(self):
        register_method("custom", self._fn)
        with pytest.raises(InvalidParameterError, match="already registered"):
            register_method("custom", self._fn)
        with pytest.raises(InvalidParameterError, match="already registered"):
            register_method("other", self._fn, aliases=("custom",))

    def test_overwrite_replaces(self):
        register_method("custom", self._fn, aliases=("old-alias",))
        replacement = register_method(
            "custom", self._fn, aliases=("new-alias",), overwrite=True
        )
        assert get_method("new-alias") is replacement
        with pytest.raises(InvalidParameterError):
            get_method("old-alias")  # retired with the replaced spec

    def test_overwrite_cannot_steal_other_methods_name(self):
        with pytest.raises(InvalidParameterError, match="different method"):
            register_method("peeling", self._fn, overwrite=True)

    def test_non_callable_rejected(self):
        with pytest.raises(InvalidParameterError):
            register_method("bad", "not-a-function")

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidParameterError):
            register_method("  ", self._fn)
