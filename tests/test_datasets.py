"""The synthetic dataset registry."""

import pytest

from repro.datasets import SMALL_SET, dataset_names, get_spec, load_dataset
from repro.errors import DatasetError


class TestRegistry:
    def test_twelve_datasets(self):
        assert len(dataset_names()) == 12

    def test_small_set_is_subset(self):
        assert set(SMALL_SET) <= set(dataset_names())
        assert len(SMALL_SET) == 5

    def test_unknown_name_raises(self):
        with pytest.raises(DatasetError):
            get_spec("nonexistent")
        with pytest.raises(DatasetError):
            load_dataset("nonexistent")

    def test_specs_have_paper_counterparts(self):
        counterparts = {get_spec(n).paper_counterpart for n in dataset_names()}
        assert "Email" in counterparts
        assert "Friendster" in counterparts
        assert len(counterparts) == 12

    def test_load_is_memoised(self):
        a = load_dataset("email")
        b = load_dataset("email")
        assert a is b

    @pytest.mark.parametrize("name", ["email", "road", "dblp", "pokec"])
    def test_datasets_are_nonempty_simple_graphs(self, name):
        g = load_dataset(name)
        assert g.n > 0
        assert g.m > 0
        # simple graph invariants
        for u, v in g.edges():
            assert u != v
            assert u < v

    def test_road_is_nearly_clique_free(self):
        from repro.cliques import count_k_cliques

        g = load_dataset("road")
        assert count_k_cliques(g, 4) == 0

    def test_dblp_has_large_max_clique(self):
        from repro.cliques import max_clique_size

        assert max_clique_size(load_dataset("dblp")) >= 20

    def test_livejournal_has_the_largest_max_clique(self):
        from repro.cliques import max_clique_size

        assert max_clique_size(load_dataset("livejournal")) >= 30


class TestExport:
    def test_export_all_round_trips(self, tmp_path):
        from repro.datasets import export_all
        from repro.graph import read_edge_list

        written = export_all(tmp_path)
        assert len(written) == 12
        # spot-check one round trip: same edge count, isolated vertices
        # are the only possible loss through the text format
        original = load_dataset("pokec")
        reloaded = read_edge_list(tmp_path / "pokec.txt")
        assert reloaded.m == original.m
