"""Fleet integration: real worker subprocesses, chaos, whole-fleet drain.

``tests/test_router.py`` covers routing semantics with in-process
workers; this file crosses the process boundary.  A
:class:`~repro.service.FleetManager` spawns genuine
``python -m repro serve --role worker`` children, an in-process router
routes to them over real sockets, and the CLI-level test drives
``serve --role router --fleet N`` end to end including the
SIGTERM-drains-everything contract.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import urllib.request

import pytest

from repro.obs.validate import validate_result
from repro.service import (
    FleetManager,
    RouterConfig,
    ServiceClient,
    make_router,
)

DATASET = "email"


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return env


class TestFleetManager:
    def test_cross_process_routing_and_sigkill_recovery(self, tmp_path):
        manager = FleetManager(2, index_dir=str(tmp_path / "fleet"))
        try:
            workers = manager.start()
            assert sorted(workers) == ["w0", "w1"]
            assert all(manager.alive(w) for w in workers)
            server, router = make_router(
                RouterConfig(port=0), workers, manager=manager
            )
            threading.Thread(
                target=server.serve_forever, daemon=True
            ).start()
            try:
                endpoint = f"http://127.0.0.1:{server.server_address[1]}"
                client = ServiceClient(endpoint, max_retries=3, timeout_s=60)
                first = client.query(dataset=DATASET, k=3)
                assert first.ok
                assert first.served_by in workers
                assert first.get("schema") == "repro/service-v1.1"
                assert validate_result(first) == []

                # chaos: SIGKILL whichever worker served, mid-run
                victim = first.served_by
                assert manager.kill(victim) is True
                assert manager.alive(victim) is False
                second = client.query(dataset=DATASET, k=3)
                assert second.ok
                assert second.served_by != victim
                assert victim not in router.ring
                assert validate_result(second) == []
            finally:
                server.shutdown()
                server.server_close()
        finally:
            manager.terminate()

    def test_terminate_reaps_every_worker(self):
        manager = FleetManager(2)
        workers = manager.start()
        assert len(workers) == 2
        manager.terminate()
        assert all(not manager.alive(w) for w in workers)


class TestFleetCLI:
    def test_fleet_serves_and_sigterm_drains_everything(self):
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--role", "router", "--fleet", "2", "--port", "0",
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=_env(), text=True,
        )
        try:
            announce = proc.stdout.readline()
            assert "router listening on http://" in announce
            assert "(fleet of 2 workers)" in announce
            port = int(
                announce.split("http://", 1)[1].split()[0].rsplit(":", 1)[1]
            )
            endpoint = f"http://127.0.0.1:{port}"
            worker_lines = [proc.stdout.readline() for _ in range(2)]
            assert all(
                line.startswith("repro worker w") for line in worker_lines
            )

            client = ServiceClient(endpoint, max_retries=2, timeout_s=60)
            out = client.query(dataset=DATASET, k=3)
            assert out.ok and out.served_by in ("w0", "w1")
            topo = client.topology()["topology"]
            assert {w["id"] for w in topo["workers"]} == {"w0", "w1"}
            with urllib.request.urlopen(
                f"{endpoint}/healthz", timeout=10
            ) as resp:
                assert resp.status == 200

            proc.send_signal(signal.SIGTERM)
            out_text, err_text = proc.communicate(timeout=90)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "repro fleet drained" in out_text
        assert "draining fleet (2 workers)" in err_text
