"""The densest_subgraph facade and result type."""

from fractions import Fraction

import pytest

from repro import SCTIndex, densest_subgraph
from repro.core import DensestSubgraphResult
from repro.errors import InvalidParameterError
from repro.graph import Graph


ALL_METHODS = [
    "sctl",
    "sctl+",
    "sctl*",
    "sctl*-sample",
    "sctl*-exact",
    "kcl",
    "kcl-sample",
    "kcl-exact",
    "coreapp",
    "coreexact",
]


class TestFacade:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_every_method_runs(self, k6_plus_k4, method):
        result = densest_subgraph(
            k6_plus_k4, 3, method=method, iterations=8, sample_size=200
        )
        assert isinstance(result, DensestSubgraphResult)
        assert result.k == 3
        # all algorithms find the K6 on this easy instance, except CoreApp
        # which may return a superset; density is at least the 1/k bound
        assert result.density >= (20 / 6) / 3 - 1e-9

    @pytest.mark.parametrize("method", ["sctl*-exact", "kcl-exact", "coreexact"])
    def test_exact_methods_flagged(self, k6_plus_k4, method):
        result = densest_subgraph(k6_plus_k4, 3, method=method)
        assert result.exact
        assert result.density == pytest.approx(20 / 6)

    def test_method_case_insensitive(self, k6_plus_k4):
        result = densest_subgraph(k6_plus_k4, 3, method="SCTL*")
        assert result.algorithm == "SCTL*"

    def test_unknown_method(self, k6_plus_k4):
        with pytest.raises(InvalidParameterError):
            densest_subgraph(k6_plus_k4, 3, method="magic")

    def test_index_reuse(self, k6_plus_k4):
        index = SCTIndex.build(k6_plus_k4)
        a = densest_subgraph(k6_plus_k4, 3, method="sctl*", index=index)
        b = densest_subgraph(k6_plus_k4, 3, method="sctl*")
        assert a.density == b.density


class TestResultType:
    def test_density_fraction_exact(self):
        result = DensestSubgraphResult(
            vertices=[1, 2, 3], clique_count=2, k=3, algorithm="x"
        )
        assert result.density_fraction == Fraction(2, 3)
        assert result.size == 3

    def test_empty_density_zero(self):
        result = DensestSubgraphResult(vertices=[], clique_count=0, k=3, algorithm="x")
        assert result.density_fraction == Fraction(0)
        assert result.density == 0.0

    def test_approximation_ratio(self):
        result = DensestSubgraphResult(
            vertices=[0, 1], clique_count=1, k=3, algorithm="x"
        )
        assert result.approximation_ratio(Fraction(1, 2)) == pytest.approx(1.0)
        assert result.approximation_ratio(Fraction(1)) == pytest.approx(0.5)
        assert result.approximation_ratio(Fraction(0)) == float("inf")

    def test_summary_mentions_key_facts(self):
        result = DensestSubgraphResult(
            vertices=[0], clique_count=0, k=4, algorithm="SCTL*", exact=True
        )
        text = result.summary()
        assert "SCTL*" in text
        assert "k=4" in text
        assert "exact" in text
