"""SCT*-Index save/load round-trips."""

import pytest

from repro.core import SCTIndex
from repro.errors import IndexBuildError
from repro.graph import Graph, gnp_graph, relaxed_caveman_graph


class TestRoundTrip:
    def test_counts_preserved(self, tmp_path):
        g = relaxed_caveman_graph(6, 5, 0.1, seed=1)
        index = SCTIndex.build(g)
        path = tmp_path / "index.sct"
        index.save(path)
        loaded = SCTIndex.load(path)
        assert loaded.n_vertices == index.n_vertices
        assert loaded.threshold == index.threshold
        assert loaded.max_clique_size == index.max_clique_size
        assert loaded.clique_counts_by_size() == index.clique_counts_by_size()

    def test_paths_preserved(self, tmp_path):
        g = gnp_graph(12, 0.5, seed=2)
        index = SCTIndex.build(g)
        file = tmp_path / "index.sct"
        index.save(file)
        loaded = SCTIndex.load(file)
        original = sorted((p.holds, p.pivots) for p in index.iter_paths())
        restored = sorted((p.holds, p.pivots) for p in loaded.iter_paths())
        assert original == restored

    def test_partial_threshold_preserved(self, tmp_path):
        g = gnp_graph(14, 0.4, seed=3)
        index = SCTIndex.build(g, threshold=4)
        file = tmp_path / "partial.sct"
        index.save(file)
        loaded = SCTIndex.load(file)
        assert loaded.threshold == 4
        assert not loaded.supports_k(3)
        assert loaded.count_k_cliques(4) == index.count_k_cliques(4)

    def test_empty_graph_round_trip(self, tmp_path):
        index = SCTIndex.build(Graph(3))
        file = tmp_path / "empty.sct"
        index.save(file)
        loaded = SCTIndex.load(file)
        assert loaded.n_vertices == 3
        assert loaded.count_k_cliques(1) == 3

    def test_max_depth_and_statistics_preserved(self, tmp_path):
        g = relaxed_caveman_graph(5, 6, 0.15, seed=9)
        index = SCTIndex.build(g)
        file = tmp_path / "stats.sct"
        index.save(file)
        loaded = SCTIndex.load(file)
        assert loaded.max_clique_size == index.max_clique_size
        assert loaded.statistics() == index.statistics()

    def test_bad_format_version_rejected(self, tmp_path):
        file = tmp_path / "bad.sct"
        file.write_text('{"format": 999, "n_vertices": 0, "n_nodes": 0, "threshold": 0}\n')
        with pytest.raises(IndexBuildError):
            SCTIndex.load(file)


class TestLoadValidation:
    @pytest.mark.parametrize("bad_vertex", ["99", "-1"])
    def test_out_of_range_vertex_rejected(self, tmp_path, bad_vertex):
        g = gnp_graph(8, 0.5, seed=4)
        SCTIndex.build(g).save(tmp_path / "corrupt.sct")
        file = tmp_path / "corrupt.sct"
        lines = file.read_text(encoding="utf-8").splitlines()
        # line 0 is the JSON header, line 1 the virtual root; corrupt the
        # first real tree node with a vertex id the graph cannot contain
        fields = lines[2].split()
        fields[0] = bad_vertex
        lines[2] = " ".join(fields)
        file.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(IndexBuildError, match=f"vertex id {bad_vertex} out of range"):
            SCTIndex.load(file)

    def test_error_message_names_the_offending_line(self, tmp_path):
        g = gnp_graph(8, 0.5, seed=4)
        file = tmp_path / "corrupt.sct"
        SCTIndex.build(g).save(file)
        lines = file.read_text(encoding="utf-8").splitlines()
        fields = lines[2].split()
        fields[0] = "123456"
        lines[2] = " ".join(fields)
        file.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(IndexBuildError) as excinfo:
            SCTIndex.load(file)
        assert lines[2] in str(excinfo.value)

    def test_root_keeps_its_sentinel_vertex(self, tmp_path):
        # the virtual root legitimately stores -1; a round-trip must accept it
        g = gnp_graph(8, 0.5, seed=4)
        file = tmp_path / "ok.sct"
        index = SCTIndex.build(g)
        index.save(file)
        assert SCTIndex.load(file).count_k_cliques(3) == index.count_k_cliques(3)
