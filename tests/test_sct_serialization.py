"""SCT*-Index save/load round-trips, across both on-disk formats."""

import pytest

from repro.core import SCTIndex
from repro.errors import IndexBuildError
from repro.graph import Graph, gnp_graph, relaxed_caveman_graph


@pytest.fixture(params=[1, 2], ids=["v1", "v2"])
def fmt(request):
    return request.param


class TestRoundTrip:
    def test_counts_preserved(self, tmp_path, fmt):
        g = relaxed_caveman_graph(6, 5, 0.1, seed=1)
        index = SCTIndex.build(g)
        path = tmp_path / "index.sct"
        index.save(path, format=fmt)
        loaded = SCTIndex.load(path)
        assert loaded.n_vertices == index.n_vertices
        assert loaded.threshold == index.threshold
        assert loaded.max_clique_size == index.max_clique_size
        assert loaded.clique_counts_by_size() == index.clique_counts_by_size()

    def test_paths_preserved(self, tmp_path, fmt):
        g = gnp_graph(12, 0.5, seed=2)
        index = SCTIndex.build(g)
        file = tmp_path / "index.sct"
        index.save(file, format=fmt)
        loaded = SCTIndex.load(file)
        original = sorted((p.holds, p.pivots) for p in index.iter_paths())
        restored = sorted((p.holds, p.pivots) for p in loaded.iter_paths())
        assert original == restored

    def test_partial_threshold_preserved(self, tmp_path, fmt):
        g = gnp_graph(14, 0.4, seed=3)
        index = SCTIndex.build(g, threshold=4)
        file = tmp_path / "partial.sct"
        index.save(file, format=fmt)
        loaded = SCTIndex.load(file)
        assert loaded.threshold == 4
        assert not loaded.supports_k(3)
        assert loaded.count_k_cliques(4) == index.count_k_cliques(4)

    def test_empty_graph_round_trip(self, tmp_path, fmt):
        index = SCTIndex.build(Graph(3))
        file = tmp_path / "empty.sct"
        index.save(file, format=fmt)
        loaded = SCTIndex.load(file)
        assert loaded.n_vertices == 3
        assert loaded.count_k_cliques(1) == 3

    def test_empty_tree_round_trip(self, tmp_path, fmt):
        # zero vertices: the tree is just the virtual root (n_nodes == 1)
        index = SCTIndex.build(Graph(0))
        file = tmp_path / "zero.sct"
        index.save(file, format=fmt)
        loaded = SCTIndex.load(file)
        assert loaded.n_vertices == 0
        assert loaded.n_tree_nodes == 0

    def test_max_depth_and_statistics_preserved(self, tmp_path, fmt):
        g = relaxed_caveman_graph(5, 6, 0.15, seed=9)
        index = SCTIndex.build(g)
        file = tmp_path / "stats.sct"
        index.save(file, format=fmt)
        loaded = SCTIndex.load(file)
        assert loaded.max_clique_size == index.max_clique_size
        assert loaded.statistics() == index.statistics()

    def test_bad_format_version_rejected(self, tmp_path):
        file = tmp_path / "bad.sct"
        file.write_text('{"format": 999, "n_vertices": 0, "n_nodes": 0, "threshold": 0}\n')
        with pytest.raises(IndexBuildError):
            SCTIndex.load(file)

    def test_unknown_save_format_rejected(self, tmp_path):
        index = SCTIndex.build(gnp_graph(6, 0.5, seed=1))
        with pytest.raises(IndexBuildError, match="unknown index format"):
            index.save(tmp_path / "x.sct", format=3)


class TestFormatDispatch:
    """Satellite: cross-version errors must name found/supported formats."""

    def test_v2_file_is_mmap_backed(self, tmp_path):
        index = SCTIndex.build(gnp_graph(10, 0.5, seed=5))
        file = tmp_path / "i.sct2"
        index.save(file)  # v2 is the default
        loaded = SCTIndex.load(file)
        assert loaded.backing == "mmap"
        loaded.close()
        assert loaded.backing == "memory"

    def test_v1_file_is_memory_backed(self, tmp_path):
        index = SCTIndex.build(gnp_graph(10, 0.5, seed=5))
        file = tmp_path / "i.sct1"
        index.save(file, format=1)
        assert SCTIndex.load(file).backing == "memory"

    def test_v1_reader_on_v2_file_names_versions(self, tmp_path):
        index = SCTIndex.build(gnp_graph(10, 0.5, seed=5))
        file = tmp_path / "i.sct2"
        index.save(file, format=2)
        with pytest.raises(IndexBuildError) as excinfo:
            SCTIndex._load_v1(file)
        message = str(excinfo.value)
        assert "format 2" in message and "format 1" in message
        assert "supported formats: 1, 2" in message

    def test_v2_reader_on_v1_file_names_versions(self, tmp_path):
        index = SCTIndex.build(gnp_graph(10, 0.5, seed=5))
        file = tmp_path / "i.sct1"
        index.save(file, format=1)
        with pytest.raises(IndexBuildError) as excinfo:
            SCTIndex._load_v2(file)
        message = str(excinfo.value)
        assert "format 1" in message and "format 2" in message
        assert "supported formats: 1, 2" in message

    def test_load_dispatches_on_header(self, tmp_path):
        index = SCTIndex.build(gnp_graph(10, 0.5, seed=5))
        v1, v2 = tmp_path / "i.sct1", tmp_path / "i.sct2"
        index.save(v1, format=1)
        index.save(v2, format=2)
        paths = [(p.holds, p.pivots) for p in index.iter_paths()]
        for file in (v1, v2):
            loaded = SCTIndex.load(file)
            assert [(p.holds, p.pivots) for p in loaded.iter_paths()] == paths


class TestLoadValidation:
    @pytest.mark.parametrize("bad_vertex", ["99", "-1"])
    def test_out_of_range_vertex_rejected(self, tmp_path, bad_vertex):
        g = gnp_graph(8, 0.5, seed=4)
        SCTIndex.build(g).save(tmp_path / "corrupt.sct", format=1)
        file = tmp_path / "corrupt.sct"
        lines = file.read_text(encoding="utf-8").splitlines()
        # line 0 is the JSON header, line 1 the virtual root; corrupt the
        # first real tree node with a vertex id the graph cannot contain
        fields = lines[2].split()
        fields[0] = bad_vertex
        lines[2] = " ".join(fields)
        file.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(IndexBuildError, match=f"vertex id {bad_vertex} out of range"):
            SCTIndex.load(file)

    def test_error_message_names_the_offending_line(self, tmp_path):
        g = gnp_graph(8, 0.5, seed=4)
        file = tmp_path / "corrupt.sct"
        SCTIndex.build(g).save(file, format=1)
        lines = file.read_text(encoding="utf-8").splitlines()
        fields = lines[2].split()
        fields[0] = "123456"
        lines[2] = " ".join(fields)
        file.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(IndexBuildError) as excinfo:
            SCTIndex.load(file)
        assert lines[2] in str(excinfo.value)

    def test_root_keeps_its_sentinel_vertex(self, tmp_path):
        # the virtual root legitimately stores -1; a round-trip must accept it
        g = gnp_graph(8, 0.5, seed=4)
        file = tmp_path / "ok.sct"
        index = SCTIndex.build(g)
        index.save(file, format=1)
        assert SCTIndex.load(file).count_k_cliques(3) == index.count_k_cliques(3)

    def test_v1_non_preorder_ids_are_canonicalised(self, tmp_path):
        # a hand-crafted v1 file whose node ids are not pre-order must
        # still load: the loader renumbers to pre-order (2 <-> 3 swapped
        # here: root -> 1 -> 3 -> 2 in DFS order)
        file = tmp_path / "shuffled.sct"
        file.write_text(
            '{"format": 1, "n_vertices": 3, "n_nodes": 4, "threshold": 0}\n'
            "-1 -1 3 1 1\n"  # root, child: node 1
            "0 0 3 1 3\n"  # hold(v0), child: node 3
            "2 0 3 0\n"  # hold(v2), leaf -- stored out of order
            "1 1 3 1 2\n"  # pivot(v1), child: node 2
        )
        loaded = SCTIndex.load(file)
        assert [(p.holds, p.pivots) for p in loaded.iter_paths()] == [
            ((0, 2), (1,))
        ]

    def test_v1_cyclic_child_pointers_rejected(self, tmp_path):
        file = tmp_path / "cycle.sct"
        file.write_text(
            '{"format": 1, "n_vertices": 2, "n_nodes": 3, "threshold": 0}\n'
            "-1 -1 2 1 1\n"
            "0 0 2 1 2\n"
            "1 0 2 1 1\n"  # points back at node 1: not a tree
        )
        with pytest.raises(IndexBuildError, match="not a tree"):
            SCTIndex.load(file)

    def test_v1_unreachable_node_rejected(self, tmp_path):
        file = tmp_path / "orphan.sct"
        file.write_text(
            '{"format": 1, "n_vertices": 2, "n_nodes": 3, "threshold": 0}\n'
            "-1 -1 1 1 1\n"
            "0 0 1 0\n"
            "1 0 1 0\n"  # no parent anywhere
        )
        with pytest.raises(IndexBuildError, match="unreachable"):
            SCTIndex.load(file)


class TestV1ToV2Canonicalisation:
    """Loading any v1 file and re-saving as v2 yields canonical bytes."""

    HEADER = '{"format": 1, "n_vertices": 4, "n_nodes": 5, "threshold": 0}\n'
    # two sibling subtrees of EQUAL size (2 nodes each), so the
    # canonicaliser cannot lean on subtree sizes to order them
    SHUFFLED = (
        "-1 -1 2 2 3 1\n"  # root, children stored as (node 3, node 1)
        "2 0 2 1 4\n"  # hold(v2), child: node 4
        "1 0 2 0\n"  # hold(v1), leaf
        "0 0 2 1 2\n"  # hold(v0), child: node 2
        "3 0 2 0\n"  # hold(v3), leaf
    )
    PREORDER = (
        "-1 -1 2 2 1 3\n"
        "0 0 2 1 2\n"
        "1 0 2 0\n"
        "2 0 2 1 4\n"
        "3 0 2 0\n"
    )

    @staticmethod
    def v2_bytes(index):
        import io

        buffer = io.BytesIO()
        index._write_v2(buffer)
        return buffer.getvalue()

    def test_duplicate_subtree_sizes_canonicalise_identically(self, tmp_path):
        shuffled = tmp_path / "shuffled.sct"
        preorder = tmp_path / "preorder.sct"
        shuffled.write_text(self.HEADER + self.SHUFFLED)
        preorder.write_text(self.HEADER + self.PREORDER)
        a = SCTIndex.load(shuffled)
        b = SCTIndex.load(preorder)
        assert [(p.holds, p.pivots) for p in a.iter_paths()] == [
            ((0, 1), ()), ((2, 3), ()),
        ]
        assert self.v2_bytes(a) == self.v2_bytes(b)

    def test_empty_graph_v1_to_v2_chain(self, tmp_path):
        index = SCTIndex.build(Graph(3))  # vertices, no edges
        index.save(tmp_path / "e.sct1", format=1)
        via_v1 = SCTIndex.load(tmp_path / "e.sct1")
        via_v1.save(tmp_path / "e.sct2", format=2)
        loaded = SCTIndex.load(tmp_path / "e.sct2")
        assert loaded.n_vertices == 3
        assert loaded.count_k_cliques(1) == 3
        assert self.v2_bytes(loaded) == self.v2_bytes(index)

    def test_single_vertex_graph_v1_to_v2_chain(self, tmp_path):
        index = SCTIndex.build(Graph(1))
        index.save(tmp_path / "s.sct1", format=1)
        via_v1 = SCTIndex.load(tmp_path / "s.sct1")
        via_v1.save(tmp_path / "s.sct2", format=2)
        loaded = SCTIndex.load(tmp_path / "s.sct2")
        assert loaded.n_vertices == 1
        assert loaded.count_k_cliques(1) == 1
        assert self.v2_bytes(loaded) == self.v2_bytes(index)

    def test_header_without_format_names_supported_formats(self, tmp_path):
        file = tmp_path / "nofmt.sct"
        file.write_text('{"n_vertices": 4, "n_nodes": 5, "threshold": 0}\n')
        with pytest.raises(IndexBuildError) as excinfo:
            SCTIndex.load(file)
        message = str(excinfo.value)
        assert "format None" in message
        assert "supported formats: 1, 2" in message

    def test_truncated_v2_header_is_a_precise_error(self, tmp_path):
        index = SCTIndex.build(gnp_graph(8, 0.4, seed=6))
        file = tmp_path / "i.sct2"
        index.save(file, format=2)
        data = file.read_bytes()
        header_len = len(data.splitlines(True)[0])
        # cut mid-header: no valid JSON line, no binary section
        (tmp_path / "trunc.sct2").write_bytes(data[: header_len // 2])
        with pytest.raises(IndexBuildError, match="malformed index file"):
            SCTIndex.load(tmp_path / "trunc.sct2")
        # header intact but the binary section is gone entirely
        (tmp_path / "headonly.sct2").write_bytes(data[:header_len])
        with pytest.raises(IndexBuildError, match="truncated or oversized"):
            SCTIndex._load_v2(tmp_path / "headonly.sct2")
