"""SCT*-Index save/load round-trips."""

import pytest

from repro.core import SCTIndex
from repro.errors import IndexBuildError
from repro.graph import Graph, gnp_graph, relaxed_caveman_graph


class TestRoundTrip:
    def test_counts_preserved(self, tmp_path):
        g = relaxed_caveman_graph(6, 5, 0.1, seed=1)
        index = SCTIndex.build(g)
        path = tmp_path / "index.sct"
        index.save(path)
        loaded = SCTIndex.load(path)
        assert loaded.n_vertices == index.n_vertices
        assert loaded.threshold == index.threshold
        assert loaded.max_clique_size == index.max_clique_size
        assert loaded.clique_counts_by_size() == index.clique_counts_by_size()

    def test_paths_preserved(self, tmp_path):
        g = gnp_graph(12, 0.5, seed=2)
        index = SCTIndex.build(g)
        file = tmp_path / "index.sct"
        index.save(file)
        loaded = SCTIndex.load(file)
        original = sorted((p.holds, p.pivots) for p in index.iter_paths())
        restored = sorted((p.holds, p.pivots) for p in loaded.iter_paths())
        assert original == restored

    def test_partial_threshold_preserved(self, tmp_path):
        g = gnp_graph(14, 0.4, seed=3)
        index = SCTIndex.build(g, threshold=4)
        file = tmp_path / "partial.sct"
        index.save(file)
        loaded = SCTIndex.load(file)
        assert loaded.threshold == 4
        assert not loaded.supports_k(3)
        assert loaded.count_k_cliques(4) == index.count_k_cliques(4)

    def test_empty_graph_round_trip(self, tmp_path):
        index = SCTIndex.build(Graph(3))
        file = tmp_path / "empty.sct"
        index.save(file)
        loaded = SCTIndex.load(file)
        assert loaded.n_vertices == 3
        assert loaded.count_k_cliques(1) == 3

    def test_bad_format_version_rejected(self, tmp_path):
        file = tmp_path / "bad.sct"
        file.write_text('{"format": 999, "n_vertices": 0, "n_nodes": 0, "threshold": 0}\n')
        with pytest.raises(IndexBuildError):
            SCTIndex.load(file)
