"""The observability layer: recorders, traces, and pipeline metrics."""

import io
import json

import pytest

from repro import densest_subgraph
from repro.core import (
    SCTIndex,
    batch_update,
    sctl,
    sctl_star,
    sctl_star_exact,
    sctl_star_sample,
)
from repro.graph import Graph, gnp_graph
from repro.obs import (
    MetricsRecorder,
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    validate_metrics,
    validate_trace_lines,
)


@pytest.fixture
def graph() -> Graph:
    return gnp_graph(30, 0.4, seed=2)


class TestNullRecorder:
    def test_disabled_and_inert(self):
        assert NULL_RECORDER.enabled is False
        NULL_RECORDER.counter("x", 5)
        NULL_RECORDER.gauge("y", 1.0)
        NULL_RECORDER.event("z", detail="ignored")
        with NULL_RECORDER.span("phase"):
            pass

    def test_span_is_shared_singleton(self):
        assert NULL_RECORDER.span("a") is NULL_RECORDER.span("b")

    def test_satisfies_protocol(self):
        assert isinstance(NullRecorder(), Recorder)
        assert isinstance(MetricsRecorder(), Recorder)


class TestMetricsRecorder:
    def test_counters_accumulate(self):
        rec = MetricsRecorder()
        rec.counter("hits")
        rec.counter("hits", 4)
        assert rec.counters == {"hits": 5}

    def test_gauges_last_write_wins(self):
        rec = MetricsRecorder()
        rec.gauge("density", 0.5)
        rec.gauge("density", 0.75)
        assert rec.gauges == {"density": 0.75}

    def test_observe_collects_into_histograms(self):
        rec = MetricsRecorder()
        rec.observe("latency", 0.002)
        rec.observe("latency", 0.004)
        assert rec.histograms["latency"].count == 2
        assert rec.quantile("latency", 0.5) is not None
        assert rec.quantile("missing", 0.5) is None

    def test_span_observe_records_elapsed_into_histogram(self):
        clock = iter([0.0, 0.0, 3.0, 3.0])
        rec = MetricsRecorder(clock=lambda: next(clock))
        with rec.span("index/build", observe="stage/index_build"):
            pass
        hist = rec.histograms["stage/index_build"]
        assert hist.count == 1
        assert hist.total == pytest.approx(3.0)

    def test_event_bumps_aggregate_counter(self):
        rec = MetricsRecorder()
        rec.event("refine_iteration", density=0.5)
        rec.event("refine_iteration", density=0.6)
        rec.event("checkpoint")
        assert rec.counters["events/refine_iteration"] == 2
        assert rec.counters["events/checkpoint"] == 1
        # the bump is aggregate-only: with a sink, event() still emits
        # exactly one trace line per call (see test_events_are_valid_jsonl)

    def test_spans_nest_with_slash_paths(self):
        rec = MetricsRecorder()
        with rec.span("exact"):
            assert rec.current_span == "exact"
            with rec.span("flow_round/1"):
                assert rec.current_span == "exact/flow_round/1"
        assert rec.current_span == ""
        assert [s.path for s in rec.spans] == ["exact/flow_round/1", "exact"]

    def test_span_totals_and_prefix_sum(self):
        clock = iter(range(100))
        rec = MetricsRecorder(clock=lambda: float(next(clock)))
        for _ in range(2):
            with rec.span("exact"):
                with rec.span("flow_round"):
                    pass
        totals = rec.span_totals()
        assert totals["exact/flow_round"][0] == 2
        assert rec.span_seconds("exact") == pytest.approx(
            sum(s.seconds for s in rec.spans if s.path.startswith("exact"))
        )

    def test_snapshot_shape(self):
        rec = MetricsRecorder()
        rec.counter("a", 2)
        rec.gauge("b", 1.5)
        with rec.span("s"):
            pass
        snap = rec.snapshot()
        assert snap["counters"] == {"a": 2}
        assert snap["gauges"] == {"b": 1.5}
        assert snap["spans"][0]["span"] == "s"
        assert validate_metrics(snap) == []
        json.dumps(snap)  # must be JSON-serialisable as-is

    def test_write_json(self, tmp_path):
        rec = MetricsRecorder()
        rec.counter("a")
        out = tmp_path / "metrics.json"
        rec.write_json(out)
        payload = json.loads(out.read_text())
        assert payload["counters"] == {"a": 1}
        assert validate_metrics(payload) == []

    def test_fraction_gauges_become_floats(self):
        from fractions import Fraction

        rec = MetricsRecorder()
        rec.gauge("density", Fraction(3, 4))
        assert rec.snapshot()["gauges"]["density"] == 0.75


class TestTraceSink:
    def test_events_are_valid_jsonl(self):
        sink = io.StringIO()
        rec = MetricsRecorder(sink=sink)
        with rec.span("build"):
            rec.counter("nodes", 7)
            rec.gauge("depth", 3)
        rec.event("done", ok=True)
        lines = sink.getvalue().splitlines()
        assert validate_trace_lines(lines) == []
        events = [json.loads(line)["event"] for line in lines]
        assert events == ["span_start", "counter", "gauge", "span_end", "point"]

    def test_counter_line_carries_running_total(self):
        sink = io.StringIO()
        rec = MetricsRecorder(sink=sink)
        rec.counter("n", 2)
        rec.counter("n", 3)
        payloads = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert [p["delta"] for p in payloads] == [2, 3]
        assert [p["value"] for p in payloads] == [2, 5]

    def test_validator_rejects_unbalanced_spans(self):
        lines = [json.dumps({"event": "span_start", "span": "a", "t": 0.0})]
        assert validate_trace_lines(lines)

    def test_validator_rejects_time_travel(self):
        lines = [
            json.dumps({"event": "counter", "name": "n", "delta": 1,
                        "value": 1, "t": 2.0}),
            json.dumps({"event": "counter", "name": "n", "delta": 1,
                        "value": 2, "t": 1.0}),
        ]
        assert validate_trace_lines(lines)

    def test_validator_rejects_empty_trace(self):
        assert validate_trace_lines([])


class TestIndexBuildMetrics:
    def test_build_counters_match_index(self, graph):
        rec = MetricsRecorder()
        index = SCTIndex.build(graph, recorder=rec)
        assert rec.counters["build/nodes"] == (
            rec.counters["build/holds"] + rec.counters["build/pivots"]
        )
        assert rec.counters["build/nodes"] > 0
        assert rec.gauges["build/max_depth"] == index.max_clique_size
        paths = rec.span_totals()
        assert "index/build" in paths
        assert "index/build/ordered_view" in paths

    def test_iter_paths_counts(self, graph):
        index = SCTIndex.build(graph)
        rec = MetricsRecorder()
        expected = sum(1 for _ in index.iter_paths())
        assert sum(1 for _ in index.iter_paths(recorder=rec)) == expected
        assert rec.counters["paths/yielded"] == expected

    def test_iter_paths_flushes_on_early_close(self, graph):
        index = SCTIndex.build(graph)
        rec = MetricsRecorder()
        it = index.iter_paths(recorder=rec)
        next(it)
        it.close()
        assert rec.counters["paths/yielded"] == 1


class TestPipelineMetrics:
    def test_sctl_star_iteration_metrics(self, graph):
        index = SCTIndex.build(graph)
        rec = MetricsRecorder()
        sctl_star(index, 3, iterations=4, recorder=rec)
        assert rec.counters["refine/iterations"] == 4
        assert rec.counters["refine/cliques_processed"] > 0
        assert rec.counters["refine/weight_updates"] > 0
        assert rec.gauges["refine/density"] > 0
        totals = rec.span_totals()
        for t in range(1, 5):
            assert f"refine/iteration/{t}" in totals

    def test_sctl_iteration_metrics(self, graph):
        index = SCTIndex.build(graph)
        rec = MetricsRecorder()
        sctl(index, 3, iterations=3, recorder=rec)
        assert rec.counters["refine/iterations"] == 3
        assert (
            rec.counters["refine/weight_updates"]
            == rec.counters["refine/cliques_processed"]
        )

    def test_batch_update_metrics(self):
        rec = MetricsRecorder()
        weights = [0, 0, 0, 0]
        # holds {0,1} + pivots {2,3}, k=3: C(2,1) = 2 cliques on the path
        batch_update(weights, [0, 1], [2, 3], 3, recorder=rec)
        assert rec.counters["batch/calls"] == 1
        assert rec.counters["batch/cliques"] == 2
        assert rec.counters["batch/weight_updates"] > 0

    def test_sampling_metrics(self, graph):
        index = SCTIndex.build(graph)
        rec = MetricsRecorder()
        sctl_star_sample(index, 3, sample_size=200, iterations=3,
                         seed=0, recorder=rec)
        assert rec.counters["sample/cliques_drawn"] > 0
        assert "sample/sample_density" in rec.gauges
        totals = rec.span_totals()
        assert "sample/refine" in totals
        assert "sample/recover" in totals

    def test_exact_full_pipeline_spans(self, graph):
        sink = io.StringIO()
        rec = MetricsRecorder(sink=sink)
        result = sctl_star_exact(graph, 3, sample_size=200, iterations=4,
                                 seed=0, recorder=rec)
        # the acceptance criterion: build, reduction, refinement and
        # flow-round phases all present with non-zero counters
        paths = set(rec.iter_span_paths())
        assert any("index/build" in p for p in paths)
        assert any(p.startswith("exact/scope_reduction") for p in paths)
        assert any("refine/iteration" in p for p in paths)
        assert any("exact/flow_round" in p for p in paths)
        assert rec.counters["build/nodes"] > 0
        assert rec.counters["refine/iterations"] > 0
        assert rec.counters["exact/flow_rounds"] >= 1
        assert rec.counters["exact/scope_vertices"] > 0
        assert rec.gauges["exact/density"] == pytest.approx(
            float(result.density_fraction)
        )
        assert validate_trace_lines(sink.getvalue().splitlines()) == []

    def test_facade_threads_recorder(self, graph):
        rec = MetricsRecorder()
        densest_subgraph(graph, 3, method="sctl*", iterations=3, recorder=rec)
        assert rec.counters["build/nodes"] > 0
        assert rec.counters["refine/iterations"] == 3


class TestRecorderParity:
    """With the default recorder the library behaves byte-identically."""

    METHODS = ["sctl", "sctl+", "sctl*", "sctl*-sample", "sctl*-exact"]

    @pytest.mark.parametrize("method", METHODS)
    def test_results_identical_with_and_without_recorder(self, graph, method):
        kwargs = {"iterations": 4}
        if method in ("sctl*-sample", "sctl*-exact"):
            kwargs.update(sample_size=200, seed=0)
        plain = densest_subgraph(graph, 3, method=method, **kwargs)
        recorded = densest_subgraph(
            graph, 3, method=method, recorder=MetricsRecorder(), **kwargs
        )
        assert plain == recorded

    def test_null_recorder_equivalent_to_omitting(self, graph):
        a = densest_subgraph(graph, 3, method="sctl*", iterations=3)
        b = densest_subgraph(
            graph, 3, method="sctl*", iterations=3, recorder=NULL_RECORDER
        )
        assert a == b


class TestSilentByDefault:
    def test_metrics_recorder_never_prints(self, graph, capsys):
        rec = MetricsRecorder()  # no sink: aggregates only
        index = SCTIndex.build(graph, recorder=rec)
        sctl_star(index, 3, iterations=2, recorder=rec)
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""


class TestTrajectoryUpdateBench:
    """The optional ``index_update`` trajectory bench validates strictly."""

    @staticmethod
    def record(index_update=None):
        benches = {
            "index_build": {"seconds": 0.01},
            "path_throughput": {
                "paths": 10, "seconds": 0.001, "paths_per_s": 1e4,
            },
            "service_query": {
                "cold": {"count": 1, "p50_s": 0.02, "p99_s": 0.02},
                "warm": {"count": 5, "p50_s": 1e-5, "p99_s": 2e-5},
            },
        }
        if index_update is not None:
            benches["index_update"] = index_update
        return {
            "schema": "repro/bench-trajectory-v1",
            "recorded_at": "2026-08-07T00:00:00+00:00",
            "python": "3.12.0",
            "dataset": "email",
            "k": 7,
            "benches": benches,
        }

    GOOD = {
        "count": 10, "p50_s": 0.005, "p99_s": 0.009,
        "dirty_fraction": 0.03, "full_rebuild_s": 0.014,
        "speedup_vs_rebuild": 2.6,
    }

    def test_records_without_the_bench_stay_valid(self):
        from repro.obs.validate import validate_trajectory

        assert validate_trajectory([self.record()]) == []

    def test_well_formed_bench_passes(self):
        from repro.obs.validate import validate_trajectory

        assert validate_trajectory([self.record(self.GOOD)]) == []

    def test_dirty_fraction_above_one_rejected(self):
        from repro.obs.validate import validate_trajectory

        bad = dict(self.GOOD, dirty_fraction=1.5)
        errors = validate_trajectory([self.record(bad)])
        assert any("dirty_fraction must be <= 1" in e for e in errors)

    def test_missing_field_rejected(self):
        from repro.obs.validate import validate_trajectory

        bad = {k: v for k, v in self.GOOD.items()
               if k != "speedup_vs_rebuild"}
        errors = validate_trajectory([self.record(bad)])
        assert any("speedup_vs_rebuild" in e for e in errors)
