"""API-level edge cases: k beyond k_max, k=2, tiny graphs — every method."""

import pytest

from repro import densest_subgraph
from repro.graph import Graph

METHODS = [
    "sctl",
    "sctl+",
    "sctl*",
    "sctl*-sample",
    "sctl*-exact",
    "kcl",
    "kcl-sample",
    "kcl-exact",
    "coreapp",
    "coreexact",
    "peel",
]


class TestKBeyondMaxClique:
    @pytest.mark.parametrize("method", METHODS)
    def test_returns_empty_result(self, method):
        g = Graph.complete(4)  # k_max = 4
        result = densest_subgraph(g, 6, method=method, iterations=3, sample_size=10)
        assert result.vertices == []
        assert result.clique_count == 0
        assert result.density == 0.0


class TestKEqualsTwo:
    """k=2 degenerates to the classic edge-densest subgraph; everything
    should still work (the paper scopes to k >= 3, the code does not)."""

    @pytest.mark.parametrize(
        "method", ["sctl*", "sctl*-exact", "kcl", "coreexact", "peel"]
    )
    def test_edge_densest_on_k4_with_tail(self, method):
        edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)]
        g = Graph(5, edges)
        result = densest_subgraph(g, 2, method=method, iterations=15)
        assert result.density >= 1.2  # the K4 has density 1.5
        if result.exact:
            assert result.vertices == [0, 1, 2, 3]


class TestTinyGraphs:
    @pytest.mark.parametrize("method", METHODS)
    def test_single_vertex(self, method):
        result = densest_subgraph(
            Graph(1), 3, method=method, iterations=2, sample_size=5
        )
        assert result.vertices == []

    @pytest.mark.parametrize("method", ["sctl*", "sctl*-exact", "kcl-exact"])
    def test_single_triangle(self, method):
        result = densest_subgraph(Graph.complete(3), 3, method=method)
        assert result.vertices == [0, 1, 2]
        assert result.clique_count == 1
        assert result.density == pytest.approx(1 / 3)


class TestDeterminism:
    @pytest.mark.parametrize(
        "method", ["sctl", "sctl*", "sctl*-sample", "kcl", "kcl-sample"]
    )
    def test_same_inputs_same_outputs(self, method):
        from repro.graph import gnp_graph

        g = gnp_graph(20, 0.4, seed=3)
        a = densest_subgraph(g, 3, method=method, iterations=5, sample_size=50, seed=9)
        b = densest_subgraph(g, 3, method=method, iterations=5, sample_size=50, seed=9)
        assert a.vertices == b.vertices
        assert a.clique_count == b.clique_count
