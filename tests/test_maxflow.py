"""Dinic max-flow: hand-built cases plus differential testing vs networkx."""

import random

import pytest

from repro.errors import GraphError
from repro.flow import MaxFlow


class TestBasics:
    def test_single_arc(self):
        mf = MaxFlow(2)
        mf.add_edge(0, 1, 7)
        assert mf.max_flow(0, 1) == 7

    def test_no_path(self):
        mf = MaxFlow(3)
        mf.add_edge(0, 1, 5)
        assert mf.max_flow(0, 2) == 0

    def test_bottleneck(self):
        mf = MaxFlow(4)
        mf.add_edge(0, 1, 10)
        mf.add_edge(1, 2, 3)
        mf.add_edge(2, 3, 10)
        assert mf.max_flow(0, 3) == 3

    def test_parallel_paths(self):
        mf = MaxFlow(4)
        mf.add_edge(0, 1, 4)
        mf.add_edge(1, 3, 4)
        mf.add_edge(0, 2, 5)
        mf.add_edge(2, 3, 5)
        assert mf.max_flow(0, 3) == 9

    def test_classic_crossover(self):
        # the textbook example requiring flow through the cross edge
        mf = MaxFlow(4)
        mf.add_edge(0, 1, 1)
        mf.add_edge(0, 2, 1)
        mf.add_edge(1, 2, 1)
        mf.add_edge(1, 3, 1)
        mf.add_edge(2, 3, 1)
        assert mf.max_flow(0, 3) == 2

    def test_same_source_sink_rejected(self):
        with pytest.raises(GraphError):
            MaxFlow(2).max_flow(0, 0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(GraphError):
            MaxFlow(2).add_edge(0, 1, -1)

    def test_out_of_range_arc(self):
        with pytest.raises(GraphError):
            MaxFlow(2).add_edge(0, 5, 1)


class TestMinCut:
    def test_cut_side_contains_source(self):
        mf = MaxFlow(3)
        mf.add_edge(0, 1, 1)
        mf.add_edge(1, 2, 5)
        mf.max_flow(0, 2)
        side = mf.min_cut_source_side(0)
        assert 0 in side
        assert 2 not in side

    def test_cut_value_equals_flow(self):
        rng = random.Random(4)
        for _ in range(10):
            n = rng.randint(4, 10)
            mf = MaxFlow(n)
            arcs = []
            for _ in range(rng.randint(6, 25)):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v:
                    c = rng.randint(1, 9)
                    mf.add_edge(u, v, c)
                    arcs.append((u, v, c))
            flow = mf.max_flow(0, n - 1)
            side = set(mf.min_cut_source_side(0))
            cut = sum(c for u, v, c in arcs if u in side and v not in side)
            assert cut == flow


class TestDifferentialVsNetworkx:
    @pytest.mark.parametrize("trial", range(20))
    def test_random_networks(self, trial):
        nx = pytest.importorskip("networkx")
        rng = random.Random(trial)
        n = rng.randint(4, 14)
        mf = MaxFlow(n)
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        for _ in range(rng.randint(5, 40)):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            c = rng.randint(0, 12)
            mf.add_edge(u, v, c)
            if g.has_edge(u, v):
                g[u][v]["capacity"] += c
            else:
                g.add_edge(u, v, capacity=c)
        expected = nx.maximum_flow_value(g, 0, n - 1)
        assert mf.max_flow(0, n - 1) == expected
