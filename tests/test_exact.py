"""SCTL*-Exact (Algorithm 7) against brute force and peer solvers."""

import pytest

from repro.baselines import core_exact, kcl_exact
from repro.cliques import count_k_cliques_naive, densest_subgraph_bruteforce
from repro.core import SCTIndex, sctl_star_exact
from repro.graph import Graph, gnp_graph, planted_near_cliques_graph


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [3, 4])
    def test_matches_bruteforce(self, seed, k):
        g = gnp_graph(11, 0.55, seed=seed)
        index = SCTIndex.build(g)
        result = sctl_star_exact(g, k, index=index, sample_size=100, iterations=4, seed=seed)
        _, optimal = densest_subgraph_bruteforce(g, k)
        assert result.density == pytest.approx(optimal)
        assert result.exact

    def test_no_kclique_graph(self):
        g = Graph(5, [(0, 1), (1, 2)])
        result = sctl_star_exact(g, 3)
        assert result.vertices == []
        assert result.exact

    def test_k6_plus_k4(self, k6_plus_k4):
        result = sctl_star_exact(k6_plus_k4, 3, sample_size=50)
        assert result.vertices == [0, 1, 2, 3, 4, 5]
        assert result.density == pytest.approx(20 / 6)

    def test_reported_count_is_true_count(self, caveman):
        result = sctl_star_exact(caveman, 3, sample_size=200)
        sub, _ = caveman.induced_subgraph(result.vertices)
        assert count_k_cliques_naive(sub, 3) == result.clique_count

    def test_builds_index_when_missing(self, small_random):
        result = sctl_star_exact(small_random, 3, sample_size=50)
        assert result.exact


class TestAgreementWithPeers:
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_three_exact_solvers_agree(self, k):
        g = planted_near_cliques_graph(
            45, [(9, 0.9), (8, 0.85)], background_p=0.02, seed=17
        )
        ours = sctl_star_exact(g, k, sample_size=500, iterations=6)
        kclx = kcl_exact(g, k, initial_iterations=5, max_total_iterations=40)
        corex = core_exact(g, k)
        assert ours.density_fraction == kclx.density_fraction
        assert ours.density_fraction == corex.density_fraction


class TestStats:
    def test_scope_and_flow_stats(self, caveman):
        result = sctl_star_exact(caveman, 3, sample_size=100)
        assert result.stats["scope_vertices"] <= caveman.n
        assert result.stats["scope_cliques"] >= result.clique_count
        assert result.stats["flow_rounds"] >= 1
        assert result.upper_bound == pytest.approx(result.density)
