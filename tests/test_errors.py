"""The exception hierarchy."""

import pytest

from repro.errors import (
    DatasetError,
    GraphError,
    IndexBuildError,
    IndexQueryError,
    InvalidParameterError,
    ReproError,
    SolverError,
    TimeoutExceeded,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphError,
            InvalidParameterError,
            IndexBuildError,
            IndexQueryError,
            DatasetError,
            SolverError,
            TimeoutExceeded,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_timeout_carries_budget(self):
        err = TimeoutExceeded(2.5)
        assert err.budget_seconds == 2.5
        assert "2.5" in str(err)

    def test_timeout_custom_message(self):
        err = TimeoutExceeded(1.0, "custom")
        assert str(err) == "custom"

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise IndexQueryError("nope")
