"""Cross-representation parity: every index backing answers identically.

The flat-array rewrite gives an :class:`SCTIndex` four lives — built in
memory, round-tripped through the legacy v1 text format, mmap-loaded from
the binary v2 format, and reconstructed zero-copy from a shared-memory
broadcast inside a worker.  These tests pin the contract that none of
those is observable through the query API: counts, paths, traversal sizes
and SCTL* densest-subgraph results agree exactly, across random graphs
and the deep planted-clique instance that exceeds the recursion limit.
"""

import sys
from math import comb

import pytest

from repro import densest_subgraph
from repro.core import SCTIndex
from repro.graph import gnp_graph, planted_clique_graph, relaxed_caveman_graph
from repro.parallel.engine import _attach_index, _release_shm, _share_index

K_RANGE = (3, 4, 5)


def _close_quietly(handle):
    try:
        handle.close()
    except (BufferError, FileNotFoundError, ValueError):
        pass


def _make_variants(index, tmp_path):
    """All four backings of ``index``, plus the handles to tear down."""
    v1_path = tmp_path / "index-v1.sct"
    index.save(v1_path, format=1)
    v2_path = tmp_path / "index-v2.sct2"
    index.save(v2_path, format=2)
    shm, meta = _share_index(index)
    attached, attached_shm = _attach_index(meta)
    variants = {
        "built": index,
        "v1": SCTIndex.load(v1_path),
        "v2-mmap": SCTIndex.load(v2_path),
        "shared-memory": attached,
    }
    handles = [attached_shm, shm]
    return variants, handles, shm


@pytest.fixture()
def variants(graph, tmp_path):
    built, handles, owner_shm = _make_variants(SCTIndex.build(graph), tmp_path)
    yield built
    for index in built.values():
        index.close()
    for handle in handles:
        _close_quietly(handle)
    _release_shm(owner_shm)


def _graphs():
    cases = {
        "caveman": relaxed_caveman_graph(7, 6, 0.12, seed=3),
        "planted": planted_clique_graph(60, 9, 0.08, seed=5),
    }
    for seed in range(4):
        cases[f"gnp-{seed}"] = gnp_graph(34, 0.3, seed=seed)
    return cases


@pytest.fixture(scope="module", params=sorted(_graphs()))
def graph(request):
    return _graphs()[request.param]


class TestQueryParity:
    def test_backings_are_distinct(self, variants):
        assert variants["built"].backing == "memory"
        assert variants["v1"].backing == "memory"
        assert variants["v2-mmap"].backing == "mmap"
        assert variants["shared-memory"].backing == "shared_memory"

    def test_counts_and_paths_agree(self, variants):
        reference = variants["built"]
        for name, other in variants.items():
            assert other.n_vertices == reference.n_vertices, name
            assert other.max_clique_size == reference.max_clique_size, name
            assert other.collect_paths() == reference.collect_paths(), name
            for k in K_RANGE:
                if k > reference.max_clique_size:
                    continue
                assert (
                    other.count_k_cliques(k) == reference.count_k_cliques(k)
                ), (name, k)
                assert (
                    other.traversal_node_count(k)
                    == reference.traversal_node_count(k)
                ), (name, k)
                assert other.collect_paths(k) == reference.collect_paths(k), (
                    name,
                    k,
                )

    def test_densest_subgraph_agrees(self, graph, variants):
        for k in K_RANGE:
            if k > variants["built"].max_clique_size:
                continue
            results = {
                name: densest_subgraph(
                    graph, k, method="sctl*", iterations=4, index=idx
                )
                for name, idx in variants.items()
            }
            reference = results["built"]
            assert reference.valid
            for name, result in results.items():
                # DenseSubgraphResult equality ignores timings/stats, so
                # this compares vertices, clique_count and density exactly
                assert result == reference, (name, k)

    def test_statistics_agree(self, variants):
        reference = variants["built"].statistics()
        for name, other in variants.items():
            assert other.statistics() == reference, name


class TestDeepCliqueParity:
    """The n=1200 planted-clique regime the paper targets.

    One shared class-scoped build (the expensive part); the zero-copy
    backings must carry the ~1150-deep tree through without truncation.
    """

    CLIQUE = 1150
    N = 1200

    @pytest.fixture(scope="class")
    def deep_index(self):
        assert self.CLIQUE > sys.getrecursionlimit()
        graph = planted_clique_graph(self.N, self.CLIQUE, 0.001, seed=7)
        return SCTIndex.build(graph)

    def test_v2_round_trip_preserves_deep_tree(self, deep_index, tmp_path):
        path = tmp_path / "deep.sct2"
        deep_index.save(path)
        loaded = SCTIndex.load(path)
        try:
            assert loaded.backing == "mmap"
            assert loaded.max_clique_size == self.CLIQUE
            k = self.CLIQUE - 2
            assert loaded.count_k_cliques(k) == comb(self.CLIQUE, k)
            assert (
                loaded.traversal_node_count(k)
                == deep_index.traversal_node_count(k)
            )
            assert loaded.a_maximum_clique() == deep_index.a_maximum_clique()
        finally:
            loaded.close()

    def test_shared_memory_preserves_deep_tree(self, deep_index):
        shm, meta = _share_index(deep_index)
        attached, attached_shm = _attach_index(meta)
        try:
            assert attached.backing == "shared_memory"
            assert attached.max_clique_size == self.CLIQUE
            k = self.CLIQUE - 1
            assert attached.count_k_cliques(k) == deep_index.count_k_cliques(k)
        finally:
            attached.close()
            _close_quietly(attached_shm)
            _release_shm(shm)
