"""Golden tests: classic graph families with hand-derivable answers."""

from math import comb

import pytest

from repro.core import SCTIndex, sctl_star_exact
from repro.graph import Graph


def cycle_graph(n):
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def star_graph(leaves):
    return Graph(leaves + 1, [(0, i) for i in range(1, leaves + 1)])


def wheel_graph(rim):
    """A hub connected to every vertex of an n-cycle."""
    edges = [(i, i % rim + 1) for i in range(1, rim + 1)]
    edges += [(0, i) for i in range(1, rim + 1)]
    return Graph(rim + 1, edges)


def complete_bipartite(a, b):
    return Graph(a + b, [(i, a + j) for i in range(a) for j in range(b)])


class TestCliqueCounts:
    def test_cycle_has_no_triangles(self):
        for n in (4, 5, 6, 10):
            index = SCTIndex.build(cycle_graph(n))
            assert index.count_k_cliques(2) == n
            assert index.count_k_cliques(3) == 0

    def test_triangle_cycle(self):
        index = SCTIndex.build(cycle_graph(3))
        assert index.count_k_cliques(3) == 1

    def test_star_counts(self):
        index = SCTIndex.build(star_graph(7))
        assert index.count_k_cliques(2) == 7
        assert index.count_k_cliques(3) == 0
        assert index.max_clique_size == 2

    def test_wheel_counts(self):
        # wheel on rim r (r >= 4): r rim edges + r spokes; triangles = r
        for rim in (4, 5, 8):
            index = SCTIndex.build(wheel_graph(rim))
            assert index.count_k_cliques(2) == 2 * rim
            assert index.count_k_cliques(3) == rim
            assert index.count_k_cliques(4) == 0

    def test_complete_bipartite_triangle_free(self):
        index = SCTIndex.build(complete_bipartite(4, 5))
        assert index.count_k_cliques(2) == 20
        assert index.count_k_cliques(3) == 0

    def test_complete_graph_profile(self):
        index = SCTIndex.build(Graph.complete(9))
        assert index.clique_counts_by_size() == {
            k: comb(9, k) for k in range(1, 10)
        }


class TestDensestOnFamilies:
    def test_wheel_densest_triangles(self):
        # every triangle uses the hub; best rho_3 subgraph is the whole wheel
        rim = 6
        g = wheel_graph(rim)
        result = sctl_star_exact(g, 3, sample_size=50)
        assert result.density == pytest.approx(rim / (rim + 1))
        assert result.vertices == list(range(rim + 1))

    def test_two_cliques_pick_the_larger(self):
        edges = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        edges += [(i, j) for i in range(5, 12) for j in range(i + 1, 12)]
        g = Graph(12, edges)
        result = sctl_star_exact(g, 4, sample_size=50)
        assert result.vertices == list(range(5, 12))
        assert result.density == pytest.approx(comb(7, 4) / 7)

    def test_k_equals_two_edge_density(self):
        # classic densest subgraph: K4 with a pendant path
        edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5)]
        g = Graph(6, edges)
        result = sctl_star_exact(g, 2, sample_size=50)
        assert result.vertices == [0, 1, 2, 3]
        assert result.density == pytest.approx(6 / 4)

    def test_petersen_graph(self):
        # the Petersen graph is triangle-free: no k>=3 densest exists
        outer = [(i, (i + 1) % 5) for i in range(5)]
        inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
        spokes = [(i, i + 5) for i in range(5)]
        g = Graph(10, outer + inner + spokes)
        index = SCTIndex.build(g)
        assert index.count_k_cliques(3) == 0
        result = sctl_star_exact(g, 3, index=index)
        assert result.vertices == []
        # k=2: vertex-transitive cubic graph -> whole graph, density 3/2
        result2 = sctl_star_exact(g, 2, index=index)
        assert result2.density == pytest.approx(15 / 10)
