"""The shared Frank-Wolfe convex-program module."""

import pytest

from repro.cliques import densest_subgraph_bruteforce, iter_k_cliques_naive
from repro.core.frank_wolfe import frank_wolfe
from repro.errors import InvalidParameterError
from repro.graph import Graph, gnp_graph


class TestFrankWolfe:
    def test_initial_state_is_uniform(self):
        cliques = [(0, 1, 2)]
        state = frank_wolfe(cliques, 3, iterations=0)
        assert state.alpha == [[pytest.approx(1 / 3)] * 3]
        assert state.weights == [pytest.approx(1 / 3)] * 3
        assert state.rounds == 0

    def test_rows_always_sum_to_one(self):
        g = gnp_graph(12, 0.5, seed=1)
        cliques = list(iter_k_cliques_naive(g, 3))
        state = frank_wolfe(cliques, g.n, iterations=20)
        for row in state.alpha:
            assert sum(row) == pytest.approx(1.0)

    def test_weights_consistent_with_alpha(self):
        g = gnp_graph(12, 0.5, seed=2)
        cliques = list(iter_k_cliques_naive(g, 3))
        state = frank_wolfe(cliques, g.n, iterations=15)
        recomputed = [0.0] * g.n
        for clique, row in zip(cliques, state.alpha):
            for v, a in zip(clique, row):
                recomputed[v] += a
        for a, b in zip(state.weights, recomputed):
            assert a == pytest.approx(b, abs=1e-9)

    def test_total_mass_is_clique_count(self):
        g = gnp_graph(12, 0.5, seed=3)
        cliques = list(iter_k_cliques_naive(g, 3))
        state = frank_wolfe(cliques, g.n, iterations=10)
        assert sum(state.weights) == pytest.approx(len(cliques))

    @pytest.mark.parametrize("seed", range(4))
    def test_max_load_converges_to_optimal_density(self, seed):
        g = gnp_graph(10, 0.55, seed=seed)
        cliques = list(iter_k_cliques_naive(g, 3))
        if not cliques:
            pytest.skip("no triangles")
        _, optimal = densest_subgraph_bruteforce(g, 3)
        state = frank_wolfe(cliques, g.n, iterations=300)
        # max load is an upper bound and approaches the optimum
        assert state.max_load >= optimal - 1e-9
        assert state.max_load <= optimal * 1.10

    def test_resume_continues_schedule(self):
        g = gnp_graph(10, 0.5, seed=5)
        cliques = list(iter_k_cliques_naive(g, 3))
        one_shot = frank_wolfe(cliques, g.n, iterations=10)
        resumed = frank_wolfe(cliques, g.n, iterations=4)
        frank_wolfe(cliques, g.n, iterations=6, state=resumed)
        assert resumed.rounds == one_shot.rounds == 10
        for a, b in zip(resumed.weights, one_shot.weights):
            assert a == pytest.approx(b)

    def test_history_tracking(self):
        cliques = [(0, 1, 2), (1, 2, 3)]
        state = frank_wolfe(cliques, 4, iterations=5, track_history=True)
        assert len(state.load_history) == 5
        # loads only tighten
        assert state.load_history[-1] <= state.load_history[0] + 1e-9

    def test_negative_iterations_rejected(self):
        with pytest.raises(InvalidParameterError):
            frank_wolfe([(0, 1)], 2, iterations=-1)

    def test_empty_cliques(self):
        state = frank_wolfe([], 5, iterations=3)
        assert state.max_load == 0.0
