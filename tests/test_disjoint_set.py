"""Unit tests for the union-find forest."""

import random

import pytest

from repro.graph import DisjointSet


class TestDisjointSet:
    def test_initial_state(self):
        ds = DisjointSet(5)
        assert ds.n_components == 5
        assert len(ds) == 5
        assert all(ds.find(i) == i for i in range(5))

    def test_union_merges(self):
        ds = DisjointSet(4)
        ds.union(0, 1)
        assert ds.connected(0, 1)
        assert not ds.connected(0, 2)
        assert ds.n_components == 3

    def test_union_idempotent(self):
        ds = DisjointSet(3)
        ds.union(0, 1)
        ds.union(1, 0)
        assert ds.n_components == 2

    def test_union_many(self):
        ds = DisjointSet(6)
        root = ds.union_many([0, 2, 4])
        assert ds.find(0) == ds.find(2) == ds.find(4) == root
        assert not ds.connected(0, 1)

    def test_union_many_single_item(self):
        ds = DisjointSet(3)
        assert ds.union_many([2]) == 2
        assert ds.n_components == 3

    def test_union_many_empty_raises(self):
        with pytest.raises(StopIteration):
            DisjointSet(3).union_many([])

    def test_groups(self):
        ds = DisjointSet(5)
        ds.union(0, 1)
        ds.union(3, 4)
        groups = sorted(sorted(g) for g in ds.groups().values())
        assert groups == [[0, 1], [2], [3, 4]]

    def test_matches_naive_connectivity(self):
        rng = random.Random(9)
        n = 40
        ds = DisjointSet(n)
        naive = [{i} for i in range(n)]
        pointer = list(range(n))
        for _ in range(60):
            a, b = rng.randrange(n), rng.randrange(n)
            ds.union(a, b)
            ra, rb = pointer[a], pointer[b]
            if ra != rb:
                naive[ra] |= naive[rb]
                for x in naive[rb]:
                    pointer[x] = ra
                naive[rb] = set()
        for a in range(n):
            for b in range(a + 1, n):
                assert ds.connected(a, b) == (pointer[a] == pointer[b])
