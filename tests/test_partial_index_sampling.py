"""§6.1: querying a partial SCT*-k'-Index below its threshold."""

import pytest

from repro.cliques import count_k_cliques_naive
from repro.core import SCTIndex, sctl_star_sample
from repro.errors import IndexQueryError
from repro.graph import gnp_graph


class TestBelowThresholdSampling:
    @pytest.fixture(scope="class")
    def setup(self):
        g = gnp_graph(18, 0.5, seed=7)
        return g, SCTIndex.build(g, threshold=5)

    def test_strict_queries_still_rejected(self, setup):
        _, partial = setup
        with pytest.raises(IndexQueryError):
            partial.count_k_cliques(3)
        with pytest.raises(IndexQueryError):
            list(partial.iter_paths(3))

    def test_relaxed_paths_cover_subset_of_cliques(self, setup):
        g, partial = setup
        relaxed_count = sum(
            p.clique_count(3)
            for p in partial.iter_paths(3, enforce_support=False)
        )
        assert 0 < relaxed_count <= count_k_cliques_naive(g, 3)

    def test_sampling_runs_below_threshold(self, setup):
        g, partial = setup
        result = sctl_star_sample(partial, 3, sample_size=300, iterations=5, seed=1)
        assert result.stats["partial_index_approximation"] is True
        assert result.density > 0

    def test_reported_count_is_lower_bound(self, setup):
        g, partial = setup
        result = sctl_star_sample(partial, 3, sample_size=300, iterations=5, seed=1)
        sub, _ = g.induced_subgraph(result.vertices)
        assert result.clique_count <= count_k_cliques_naive(sub, 3)

    def test_at_threshold_is_exact_counting(self, setup):
        g, partial = setup
        result = sctl_star_sample(partial, 5, sample_size=10**6, iterations=5, seed=1)
        assert result.stats["partial_index_approximation"] is False
        if result.vertices:
            sub, _ = g.induced_subgraph(result.vertices)
            assert result.clique_count == count_k_cliques_naive(sub, 5)

    def test_count_in_subset_relaxed_is_lower_bound(self, setup):
        g, partial = setup
        subset = list(range(0, 18, 2))
        sub, _ = g.induced_subgraph(subset)
        relaxed = partial.count_in_subset(3, subset, enforce_support=False)
        assert relaxed <= count_k_cliques_naive(sub, 3)
