"""Service telemetry: /metrics exposition, request ids, access log."""

import io
import json
import threading
import urllib.request

import pytest

from repro.obs import (
    Histogram,
    histogram_from_buckets,
    parse_exposition,
    sanitize_metric_name,
)
from repro.service import ReproService, ServiceConfig, make_server

DATASET = "email"


def make_service(**kwargs) -> ReproService:
    return ReproService(
        ServiceConfig(cache_size=2, result_cache_size=8), **kwargs
    )


def query(service, **fields):
    obj = {"op": "query", "dataset": DATASET, "k": 4, "iterations": 3}
    obj.update(fields)
    return service.handle_request(obj)


class TestRequestIds:
    def test_every_response_carries_a_request_id(self):
        service = make_service()
        responses = [
            query(service),
            query(service),  # warm
            service.handle_request({"op": "stats"}),
            service.handle_request({"op": "nope"}),  # error envelope too
        ]
        rids = [r.get("request_id") for r in responses]
        assert all(isinstance(rid, str) and rid for rid in rids)
        assert len(set(rids)) == len(rids)  # generated ids are unique

    def test_client_request_id_is_echoed(self):
        service = make_service()
        response = query(service, request_id="my-correlation-id")
        assert response["request_id"] == "my-correlation-id"

    def test_request_id_stamps_trace_events(self):
        sink = io.StringIO()
        service = make_service(sink=sink)
        query(service, request_id="rid-under-test")
        stamped = [
            json.loads(line)
            for line in sink.getvalue().splitlines()
            if json.loads(line).get("rid") == "rid-under-test"
        ]
        assert stamped, "the request's computation left no rid-stamped events"
        assert any(e["event"] == "span_end" for e in stamped)


class TestLatencyHistograms:
    def test_cold_and_warm_split(self):
        service = make_service()
        first = query(service)
        assert first["cached"] is False
        for _ in range(3):
            assert query(service)["cached"] is True
        digests = service.stats_snapshot()["histograms"]
        assert digests["service/latency/query/cold"]["count"] == 1
        assert digests["service/latency/query/warm"]["count"] == 3

    def test_build_profile_and_stats_temperatures(self):
        service = make_service()
        service.handle_request({"op": "build", "dataset": DATASET})
        service.handle_request({"op": "build", "dataset": DATASET})
        service.handle_request({"op": "stats"})
        digests = service.stats_snapshot()["histograms"]
        assert digests["service/latency/build/cold"]["count"] == 1
        assert digests["service/latency/build/warm"]["count"] == 1
        assert digests["service/latency/stats/warm"]["count"] >= 1

    def test_stats_digests_match_recorder_quantiles(self):
        service = make_service()
        query(service)
        query(service)
        digests = service.stats_snapshot()["histograms"]
        for name, digest in digests.items():
            hist = service._recorder.histograms[name]
            assert digest["count"] == hist.count
            assert digest["p50"] == hist.quantile(0.50)
            assert digest["p95"] == hist.quantile(0.95)
            assert digest["p99"] == hist.quantile(0.99)


class TestMetricsEndpoint:
    def test_exposition_agrees_with_stats(self):
        service = make_service()
        query(service)
        query(service)
        service.handle_request({"op": "build", "dataset": DATASET})
        stats = service.stats_snapshot()
        parsed = parse_exposition(service.metrics_text())
        for name, value in stats["counters"].items():
            metric = parsed[sanitize_metric_name(name) + "_total"]
            assert metric["type"] == "counter"
            assert metric["value"] == value
        for name, digest in stats["histograms"].items():
            metric = parsed[sanitize_metric_name(name)]
            assert metric["type"] == "histogram"
            cumulative = [count for _, count in metric["buckets"]]
            assert cumulative == sorted(cumulative), f"{name} not monotone"
            assert metric["buckets"][-1][0] == float("inf")
            assert metric["buckets"][-1][1] == digest["count"]
            assert metric["count"] == digest["count"]
            assert metric["sum"] == pytest.approx(digest["sum"])
            bounds, counts = histogram_from_buckets(metric["buckets"])
            rebuilt = Histogram.from_snapshot({
                "bounds": bounds, "counts": counts,
                "sum": metric["sum"], "count": metric["count"],
            })
            for q, field in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
                assert rebuilt.quantile(q) == digest[field], (name, field)

    def test_http_scrape(self):
        httpd, service = make_server(
            ServiceConfig(port=0, cache_size=2, result_cache_size=8)
        )
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            port = httpd.server_address[1]

            def post(path, obj):
                req = urllib.request.Request(
                    f"http://127.0.0.1:{port}{path}",
                    data=json.dumps(obj).encode(), method="POST",
                )
                with urllib.request.urlopen(req, timeout=60) as resp:
                    return json.loads(resp.read().decode().splitlines()[0])

            first = post("/v1/query", {"dataset": DATASET, "k": 4,
                                       "iterations": 3})
            second = post("/v1/query", {"dataset": DATASET, "k": 4,
                                        "iterations": 3,
                                        "request_id": "http-rid"})
            assert first["request_id"] and second["request_id"] == "http-rid"

            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=60
            ) as resp:
                assert resp.status == 200
                content_type = resp.headers.get("Content-Type", "")
                text = resp.read().decode("utf-8")
            assert content_type.startswith("text/plain")
            parsed = parse_exposition(text)
            requests_total = parsed["repro_service_requests_query_total"]
            assert requests_total["value"] == 2
            warm = parsed["repro_service_latency_query_warm"]
            assert warm["count"] == 1
            cumulative = [count for _, count in warm["buckets"]]
            assert cumulative == sorted(cumulative)
        finally:
            httpd.shutdown()
            httpd.server_close()


class TestAccessLog:
    def test_one_json_line_per_request(self):
        log = io.StringIO()
        service = make_service(access_log=log)
        first = query(service)
        warm = query(service, request_id="logged-rid")
        service.handle_request({"op": "stats"})
        entries = [
            json.loads(line) for line in log.getvalue().splitlines()
        ]
        assert len(entries) == 3
        assert [e["op"] for e in entries] == ["query", "query", "stats"]
        assert entries[0]["request_id"] == first["request_id"]
        assert entries[1]["request_id"] == "logged-rid"
        assert entries[0]["temp"] == "cold"
        assert entries[1]["temp"] == "warm"
        for entry in entries:
            assert entry["code"] == 0
            assert entry["duration_s"] >= 0
            assert entry["ts"] > 0

    def test_errors_are_logged_too(self):
        log = io.StringIO()
        service = make_service(access_log=log)
        response = service.handle_request({"op": "query"})  # missing fields
        (entry,) = [json.loads(line) for line in log.getvalue().splitlines()]
        assert entry["code"] == response["code"] == 2
        assert entry["request_id"] == response["request_id"]
