"""Failure injection: corrupted inputs must fail loudly and typed."""

import pytest

from repro.core import SCTIndex
from repro.errors import GraphError, IndexBuildError, ReproError
from repro.graph import Graph, gnp_graph, read_edge_list


@pytest.fixture
def saved_index(tmp_path):
    # the v1 text format: line-level corruptions below edit it as text
    g = gnp_graph(12, 0.5, seed=1)
    path = tmp_path / "ok.sct"
    SCTIndex.build(g).save(path, format=1)
    return path


@pytest.fixture
def saved_index_v2(tmp_path):
    g = gnp_graph(12, 0.5, seed=1)
    path = tmp_path / "ok.sct2"
    SCTIndex.build(g).save(path)
    return path


class TestCorruptIndexFiles:
    def test_truncated_file(self, saved_index):
        text = saved_index.read_text().splitlines()
        saved_index.write_text("\n".join(text[: len(text) // 2]))
        with pytest.raises(IndexBuildError):
            SCTIndex.load(saved_index)

    def test_garbage_header(self, tmp_path):
        bad = tmp_path / "bad.sct"
        bad.write_text("not json at all\n")
        with pytest.raises(IndexBuildError):
            SCTIndex.load(bad)

    def test_missing_header_fields(self, tmp_path):
        bad = tmp_path / "bad.sct"
        bad.write_text('{"format": 1}\n')
        with pytest.raises(IndexBuildError):
            SCTIndex.load(bad)

    def test_non_numeric_node_line(self, saved_index):
        lines = saved_index.read_text().splitlines()
        lines[1] = "x y z w"
        saved_index.write_text("\n".join(lines) + "\n")
        with pytest.raises(IndexBuildError):
            SCTIndex.load(saved_index)

    def test_out_of_range_child_pointer(self, tmp_path):
        bad = tmp_path / "bad.sct"
        bad.write_text(
            '{"format": 1, "n_vertices": 1, "n_nodes": 2, "threshold": 0}\n'
            "-1 -1 1 1 99\n"
            "0 0 1 0\n"
        )
        with pytest.raises(IndexBuildError):
            SCTIndex.load(bad)

    def test_errors_are_catchable_as_base(self, tmp_path):
        bad = tmp_path / "bad.sct"
        bad.write_text("{}\n")
        with pytest.raises(ReproError):
            SCTIndex.load(bad)


class TestCorruptIndexFilesV2:
    def test_truncated_binary_section(self, saved_index_v2):
        data = saved_index_v2.read_bytes()
        saved_index_v2.write_bytes(data[: len(data) // 2])
        with pytest.raises(IndexBuildError, match="truncated or oversized"):
            SCTIndex.load(saved_index_v2)

    def test_trailing_garbage(self, saved_index_v2):
        with saved_index_v2.open("ab") as handle:
            handle.write(b"\x00" * 64)
        with pytest.raises(IndexBuildError, match="truncated or oversized"):
            SCTIndex.load(saved_index_v2)

    def test_unknown_column_layout(self, tmp_path):
        bad = tmp_path / "bad.sct2"
        bad.write_bytes(
            b'{"format": 2, "n_vertices": 1, "n_nodes": 1, "threshold": 0, '
            b'"itemsize": 8, "endian": "little", "columns": ["mystery"]}\n'
        )
        with pytest.raises(IndexBuildError, match="column layout"):
            SCTIndex.load(bad)

    def test_corrupt_root_sentinel(self, saved_index_v2):
        data = bytearray(saved_index_v2.read_bytes())
        header_end = data.index(b"\n") + 1
        # vertex[0] is the virtual root's -1 sentinel; zero it out
        data[header_end:header_end + 8] = b"\x00" * 8
        saved_index_v2.write_bytes(bytes(data))
        with pytest.raises(IndexBuildError, match="inconsistent column data"):
            SCTIndex.load(saved_index_v2)

    def test_v2_errors_are_catchable_as_base(self, saved_index_v2):
        data = saved_index_v2.read_bytes()
        saved_index_v2.write_bytes(data[:40])
        with pytest.raises(ReproError):
            SCTIndex.load(saved_index_v2)


class TestCorruptGraphFiles:
    def test_single_token_line(self, tmp_path):
        f = tmp_path / "g.txt"
        f.write_text("1 2\nonly\n")
        with pytest.raises(GraphError):
            read_edge_list(f)

    def test_empty_file_gives_empty_graph(self, tmp_path):
        f = tmp_path / "g.txt"
        f.write_text("# nothing\n")
        g = read_edge_list(f)
        assert g.n == 0 and g.m == 0


class TestDefensiveGraphConstruction:
    def test_edges_referencing_ghost_vertices(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 1), (1, 2)])

    def test_negative_vertex_id(self):
        with pytest.raises(GraphError):
            Graph(3, [(-1, 0)])
