"""SCTL*-Sample (Algorithm 6) and the clique sampler."""

import random
from math import comb

import pytest

from repro.cliques import count_k_cliques_naive, densest_subgraph_bruteforce
from repro.core import SCTIndex, sample_k_cliques, sctl_star_sample
from repro.core.sampling import _unrank_combination
from repro.errors import InvalidParameterError
from repro.graph import Graph, gnp_graph, relaxed_caveman_graph


class TestUnranking:
    def test_bijection(self):
        m, t = 7, 3
        seen = {_unrank_combination(r, m, t) for r in range(comb(m, t))}
        assert len(seen) == comb(m, t)
        for combo in seen:
            assert len(combo) == t
            assert all(0 <= x < m for x in combo)
            assert list(combo) == sorted(combo)

    def test_first_and_last(self):
        assert _unrank_combination(0, 5, 2) == (0, 1)
        assert _unrank_combination(comb(5, 2) - 1, 5, 2) == (3, 4)


class TestSampler:
    def test_sample_is_distinct_valid_cliques(self):
        g = gnp_graph(14, 0.5, seed=1)
        index = SCTIndex.build(g)
        paths = index.collect_paths(3)
        rng = random.Random(0)
        sample = sample_k_cliques(paths, 3, 30, rng)
        assert len(sample) <= 30
        assert len({tuple(sorted(c)) for c in sample}) == len(sample)
        for clique in sample:
            assert g.is_clique(clique)

    def test_oversized_budget_returns_everything(self):
        g = gnp_graph(12, 0.5, seed=2)
        index = SCTIndex.build(g)
        paths = index.collect_paths(3)
        total = count_k_cliques_naive(g, 3)
        sample = sample_k_cliques(paths, 3, total * 10, random.Random(0))
        assert len(sample) == total

    def test_allocation_roughly_proportional(self):
        # two far-apart blocks: the bigger block should receive more samples
        g = relaxed_caveman_graph(2, 12, 0.0, seed=0)
        index = SCTIndex.build(g)
        paths = index.collect_paths(3)
        sample = sample_k_cliques(paths, 3, 100, random.Random(1))
        in_first = sum(1 for c in sample if max(c) < 12)
        assert 30 < in_first < 70  # equal blocks -> near-even split

    def test_deterministic_for_seed(self):
        g = gnp_graph(13, 0.5, seed=3)
        index = SCTIndex.build(g)
        paths = index.collect_paths(3)
        a = sample_k_cliques(paths, 3, 25, random.Random(7))
        b = sample_k_cliques(paths, 3, 25, random.Random(7))
        assert a == b


class TestAlgorithm:
    def test_empty_graph(self):
        result = sctl_star_sample(SCTIndex.build(Graph(4)), 3, sample_size=10)
        assert result.vertices == []

    def test_invalid_parameters(self):
        index = SCTIndex.build(Graph.complete(4))
        with pytest.raises(InvalidParameterError):
            sctl_star_sample(index, 3, sample_size=0)
        with pytest.raises(InvalidParameterError):
            sctl_star_sample(index, 3, sample_size=5, iterations=0)

    def test_reported_density_is_true_density(self):
        g = gnp_graph(16, 0.45, seed=4)
        index = SCTIndex.build(g)
        result = sctl_star_sample(index, 3, sample_size=50, iterations=5, seed=2)
        if result.vertices:
            sub, _ = g.induced_subgraph(result.vertices)
            assert count_k_cliques_naive(sub, 3) == result.clique_count

    @pytest.mark.parametrize("seed", range(4))
    def test_density_bounded_by_optimum(self, seed):
        g = gnp_graph(11, 0.55, seed=seed)
        index = SCTIndex.build(g)
        if index.max_clique_size < 3:
            pytest.skip("no triangle")
        _, optimal = densest_subgraph_bruteforce(g, 3)
        result = sctl_star_sample(index, 3, sample_size=200, iterations=10, seed=seed)
        assert result.density <= optimal + 1e-9

    def test_full_sample_recovers_good_solution(self, k6_plus_k4):
        index = SCTIndex.build(k6_plus_k4)
        # budget covers every clique: behaves like (unreduced) SCTL
        result = sctl_star_sample(index, 3, sample_size=10**6, iterations=10)
        assert result.density == pytest.approx(20 / 6)

    def test_deterministic_given_seed(self, caveman):
        index = SCTIndex.build(caveman)
        a = sctl_star_sample(index, 3, sample_size=40, iterations=5, seed=9)
        b = sctl_star_sample(index, 3, sample_size=40, iterations=5, seed=9)
        assert a.vertices == b.vertices
        assert a.clique_count == b.clique_count

    def test_partial_index_supported(self):
        g = gnp_graph(16, 0.45, seed=6)
        index = SCTIndex.build(g, threshold=4)
        result = sctl_star_sample(index, 4, sample_size=100, iterations=5)
        assert result.density >= 0.0

    def test_stats_recorded(self, caveman):
        index = SCTIndex.build(caveman)
        result = sctl_star_sample(index, 3, sample_size=30, iterations=5)
        assert result.stats["sampled_cliques"] <= 30
        assert result.stats["sampled_vertices"] >= 3
        assert "clique_visits" in result.stats
