"""The density-friendly decomposition."""

from fractions import Fraction

import pytest

from repro.cliques import iter_k_cliques_naive
from repro.core.frank_wolfe import frank_wolfe
from repro.graph import Graph, gnp_graph
from repro.hypergraph import (
    Hypergraph,
    density_friendly_decomposition,
    exact_densest,
)


class TestDecompositionStructure:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [2, 3])
    def test_shells_partition_vertices_with_decreasing_density(self, seed, k):
        g = gnp_graph(12, 0.45, seed=seed)
        h = Hypergraph.from_graph_cliques(g, k)
        levels = density_friendly_decomposition(h)
        seen = set()
        densities = []
        for level in levels:
            assert not (seen & set(level.vertices))
            seen |= set(level.vertices)
            densities.append(level.density)
        assert seen == set(range(g.n))
        for before, after in zip(densities, densities[1:]):
            assert after < before

    @pytest.mark.parametrize("seed", range(4))
    def test_first_shell_is_the_densest_subgraph(self, seed):
        g = gnp_graph(12, 0.5, seed=seed)
        h = Hypergraph.from_graph_cliques(g, 3)
        if h.m == 0:
            pytest.skip("no triangles")
        levels = density_friendly_decomposition(h)
        _, optimal = exact_densest(h)
        assert levels[0].density == optimal
        assert h.density(levels[0].vertices) == optimal

    def test_first_shell_is_maximal(self):
        # two disjoint triangles: both are optima; the maximal optimum is
        # their union, so the first shell must contain all six vertices
        edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
        g = Graph(6, edges)
        h = Hypergraph.from_graph_cliques(g, 3)
        levels = density_friendly_decomposition(h)
        assert levels[0].vertices == (0, 1, 2, 3, 4, 5)
        assert levels[0].density == Fraction(1, 3)

    def test_isolated_vertices_form_zero_shell(self):
        h = Hypergraph(5, [(0, 1, 2)])
        levels = density_friendly_decomposition(h)
        assert levels[-1].density == 0
        assert set(levels[-1].vertices) == {3, 4}

    def test_empty_hypergraph(self):
        levels = density_friendly_decomposition(Hypergraph(3))
        assert len(levels) == 1
        assert levels[0].density == 0
        assert levels[0].vertices == (0, 1, 2)

    def test_two_tier_structure_recovered(self):
        # K5 (dense tier) + a pendant triangle fan (sparse tier)
        edges = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        edges += [(4, 5), (5, 6), (4, 6)]
        g = Graph(7, edges)
        h = Hypergraph.from_graph_cliques(g, 3)
        levels = density_friendly_decomposition(h)
        assert set(levels[0].vertices) == set(range(5))
        assert levels[0].density == Fraction(10, 5)
        # the triangle {4,5,6} has one of its vertices settled; vertices
        # 5 and 6 land in a later shell with the quotient triangle
        assert {5, 6} <= set(levels[1].vertices)


class TestFrankWolfeConnection:
    def test_converged_loads_respect_shell_order(self):
        """After many FW rounds, loads of first-shell vertices dominate
        later shells (loads converge to the shell's marginal density)."""
        g = gnp_graph(11, 0.5, seed=8)
        cliques = list(iter_k_cliques_naive(g, 3))
        if not cliques:
            pytest.skip("no triangles")
        h = Hypergraph(g.n, cliques)
        levels = density_friendly_decomposition(h)
        positive = [lvl for lvl in levels if lvl.density > 0]
        if len(positive) < 2:
            pytest.skip("single shell")
        state = frank_wolfe(cliques, g.n, iterations=400)
        first = min(state.weights[v] for v in positive[0].vertices)
        later = max(state.weights[v] for v in positive[-1].vertices)
        assert first >= later - 0.15

    def test_loads_approximate_shell_densities(self):
        g = gnp_graph(10, 0.55, seed=9)
        cliques = list(iter_k_cliques_naive(g, 3))
        if not cliques:
            pytest.skip("no triangles")
        h = Hypergraph(g.n, cliques)
        levels = density_friendly_decomposition(h)
        state = frank_wolfe(cliques, g.n, iterations=400)
        top = levels[0]
        for v in top.vertices:
            assert state.weights[v] == pytest.approx(float(top.density), abs=0.2)
