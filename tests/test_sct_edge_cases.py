"""Edge cases and second-order behaviours of the SCT*-Index."""

from math import comb

import pytest

from repro.core import SCTIndex
from repro.graph import Graph, gnp_graph


class TestSubsetQueries:
    def test_empty_subset(self):
        index = SCTIndex.build(Graph.complete(5))
        assert index.count_in_subset(3, []) == 0
        assert index.per_vertex_counts_in_subset(3, []) == {}

    def test_full_subset_equals_global(self):
        g = gnp_graph(14, 0.5, seed=9)
        index = SCTIndex.build(g)
        assert index.count_in_subset(3, g.vertices()) == index.count_k_cliques(3)

    def test_subset_singleton(self):
        index = SCTIndex.build(Graph.complete(5))
        assert index.count_in_subset(3, [0]) == 0
        assert index.count_in_subset(1, [0]) == 1


class TestMaximumCliqueFromIndex:
    def test_complete_graph(self):
        index = SCTIndex.build(Graph.complete(6))
        assert index.a_maximum_clique() == [0, 1, 2, 3, 4, 5]

    def test_partial_index_still_finds_max_clique(self):
        g = gnp_graph(18, 0.5, seed=10)
        full = SCTIndex.build(g)
        partial = SCTIndex.build(g, threshold=4)
        if partial.n_tree_nodes:
            clique = partial.a_maximum_clique()
            assert g.is_clique(clique)
            assert len(clique) == full.max_clique_size

    def test_edgeless(self):
        index = SCTIndex.build(Graph(3))
        assert len(index.a_maximum_clique()) == 1


class TestPathIterationConsistency:
    def test_filtered_paths_subset_of_all(self):
        g = gnp_graph(14, 0.5, seed=11)
        index = SCTIndex.build(g)
        all_keys = {(p.holds, p.pivots) for p in index.iter_paths()}
        for k in (3, 4, 5):
            for path in index.iter_paths(k):
                assert (path.holds, path.pivots) in all_keys

    def test_filtered_counts_match_manual_filter(self):
        g = gnp_graph(14, 0.5, seed=12)
        index = SCTIndex.build(g)
        for k in (3, 4):
            manual = sum(
                p.clique_count(k)
                for p in index.iter_paths()
                if p.clique_count(k) > 0
            )
            assert index.count_k_cliques(k) == manual

    def test_path_hold_counts_bounded_by_k(self):
        g = gnp_graph(16, 0.5, seed=13)
        index = SCTIndex.build(g)
        for path in index.iter_paths(3):
            assert len(path.holds) <= 3


class TestSingleEdgeAndTriangle:
    def test_single_edge(self):
        index = SCTIndex.build(Graph(2, [(0, 1)]))
        assert index.count_k_cliques(2) == 1
        assert index.count_k_cliques(3) == 0
        assert index.max_clique_size == 2

    def test_two_triangles_sharing_an_edge(self):
        g = Graph(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
        index = SCTIndex.build(g)
        assert index.count_k_cliques(3) == 2
        assert index.count_k_cliques(4) == 0
        assert index.per_vertex_counts(3) == [1, 2, 2, 1]

    def test_disconnected_cliques(self):
        edges = [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)]
        index = SCTIndex.build(Graph(6, edges))
        assert index.count_k_cliques(3) == 2

    def test_counts_on_k_bigger_than_graph(self):
        index = SCTIndex.build(Graph.complete(4))
        assert index.count_k_cliques(10) == 0
        assert index.per_vertex_counts(10) == [0, 0, 0, 0]


class TestLeafStatistics:
    def test_leaf_count_positive_for_nonempty(self):
        g = gnp_graph(10, 0.4, seed=14)
        index = SCTIndex.build(g)
        assert index.n_leaves >= 1
        assert index.n_leaves <= index.n_tree_nodes

    def test_tree_nodes_scale_with_density(self):
        sparse = SCTIndex.build(gnp_graph(30, 0.1, seed=1))
        dense = SCTIndex.build(gnp_graph(30, 0.6, seed=1))
        assert dense.n_tree_nodes > sparse.n_tree_nodes
