"""Top-s dense region extraction."""

import pytest

from repro.core.multi import top_dense_subgraphs
from repro.errors import InvalidParameterError
from repro.graph import Graph
from repro.graph.generators import disjoint_union, planted_near_cliques_graph


@pytest.fixture
def three_blocks():
    """Three disjoint dense blocks of decreasing density."""
    blocks = planted_near_cliques_graph(
        40, [(10, 1.0), (8, 0.95), (7, 0.9)], background_p=0.0, seed=3
    )
    return blocks


class TestTopDenseSubgraphs:
    def test_invalid_count(self, three_blocks):
        with pytest.raises(InvalidParameterError):
            top_dense_subgraphs(three_blocks, 3, count=0)

    def test_finds_disjoint_regions(self, three_blocks):
        regions = top_dense_subgraphs(three_blocks, 3, count=3, exact=True)
        assert len(regions) == 3
        seen = set()
        for region in regions:
            assert not (seen & set(region.vertices))
            seen |= set(region.vertices)

    def test_densities_non_increasing(self, three_blocks):
        regions = top_dense_subgraphs(three_blocks, 3, count=3, exact=True)
        densities = [r.density for r in regions]
        assert densities == sorted(densities, reverse=True)

    def test_first_region_is_global_densest(self, three_blocks):
        regions = top_dense_subgraphs(three_blocks, 3, count=1, exact=True)
        assert set(regions[0].vertices) == set(range(10))

    def test_min_density_stops_early(self, three_blocks):
        regions = top_dense_subgraphs(
            three_blocks, 3, count=5, exact=True, min_density=10.0
        )
        assert all(r.density > 10.0 for r in regions)
        assert len(regions) < 3

    def test_stops_when_no_cliques_remain(self):
        g = Graph.complete(4)
        regions = top_dense_subgraphs(g, 3, count=5, exact=True)
        assert len(regions) == 1

    def test_vertex_ids_refer_to_input_graph(self):
        a = Graph.complete(5)
        b = Graph.complete(6)
        g = disjoint_union([a, b])
        regions = top_dense_subgraphs(g, 3, count=2, exact=True)
        assert set(regions[0].vertices) == set(range(5, 11))
        assert set(regions[1].vertices) == set(range(5))

    def test_approximate_mode_runs(self, three_blocks):
        regions = top_dense_subgraphs(three_blocks, 3, count=2, exact=False)
        assert len(regions) == 2
        assert all(not r.exact for r in regions)
