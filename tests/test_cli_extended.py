"""The stats / near-clique / top CLI commands."""

import pytest

from repro.cli import main
from repro.graph import Graph, write_edge_list
from repro.graph.generators import disjoint_union, planted_near_cliques_graph


@pytest.fixture
def blocks_file(tmp_path):
    dense = planted_near_cliques_graph(
        30, [(8, 0.95), (7, 0.9)], background_p=0.0, seed=4
    )
    tail = Graph(20, [(i, i + 1) for i in range(19)])
    g = disjoint_union([dense, tail])
    path = tmp_path / "blocks.txt"
    write_edge_list(g, path)
    return str(path)


class TestStats:
    def test_basic_stats(self, blocks_file, capsys):
        assert main(["stats", blocks_file]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out
        assert "triangles" in out
        assert "transitivity" in out

    def test_with_kmax(self, blocks_file, capsys):
        assert main(["stats", blocks_file, "--kmax"]) == 0
        out = capsys.readouterr().out
        assert "k_max" in out
        assert "tree nodes" in out

    def test_dataset_arg(self, capsys):
        assert main(["stats", "dataset:road"]) == 0
        assert "edge density" in capsys.readouterr().out

    def test_json_output(self, blocks_file, capsys):
        import json

        assert main(["stats", blocks_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["vertices"] > 0
        assert payload["edges"] > 0
        assert "transitivity" in payload
        assert "k_max" not in payload

    def test_json_with_kmax(self, blocks_file, capsys):
        import json

        assert main(["stats", blocks_file, "--kmax", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["k_max"] >= 3
        assert payload["sct_tree_nodes"] > 0


class TestNearClique:
    def test_detects_and_predicts(self, blocks_file, capsys):
        assert main(["near-clique", blocks_file, "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "near-clique on" in out
        assert "members:" in out

    def test_perfect_clique_message(self, tmp_path, capsys):
        path = tmp_path / "k5.txt"
        write_edge_list(Graph.complete(5), path)
        assert main(["near-clique", str(path), "-k", "3"]) == 0
        assert "perfect clique" in capsys.readouterr().out

    def test_approximate_mode(self, blocks_file, capsys):
        assert main(["near-clique", blocks_file, "-k", "3", "--approximate"]) == 0
        assert "near-clique on" in capsys.readouterr().out


class TestTop:
    def test_finds_both_blocks(self, blocks_file, capsys):
        assert main(
            ["top", blocks_file, "-k", "3", "--count", "2", "--show-vertices"]
        ) == 0
        out = capsys.readouterr().out
        assert "rank" in out
        assert "#1:" in out
        assert "#2:" in out

    def test_min_density_filters(self, blocks_file, capsys):
        assert main(
            ["top", blocks_file, "-k", "3", "--count", "5",
             "--min-density", "1000"]
        ) == 0
        assert "no dense regions" in capsys.readouterr().out
