"""Unit tests for the synthetic graph generators."""

import pytest

from repro.errors import InvalidParameterError
from repro.graph import (
    barabasi_albert_graph,
    disjoint_union,
    gnm_graph,
    gnp_graph,
    grid_graph,
    overlapping_community_graph,
    planted_clique_graph,
    planted_near_cliques_graph,
    powerlaw_cluster_graph,
    relaxed_caveman_graph,
)
from repro.cliques import count_k_cliques


class TestGnp:
    def test_extremes(self):
        assert gnp_graph(10, 0.0, seed=1).m == 0
        assert gnp_graph(10, 1.0, seed=1).m == 45

    def test_seed_determinism(self):
        assert gnp_graph(30, 0.3, seed=5) == gnp_graph(30, 0.3, seed=5)

    def test_seed_sensitivity(self):
        assert gnp_graph(30, 0.3, seed=5) != gnp_graph(30, 0.3, seed=6)

    def test_invalid_p(self):
        with pytest.raises(InvalidParameterError):
            gnp_graph(5, 1.5)


class TestGnm:
    def test_exact_edge_count(self):
        assert gnm_graph(20, 37, seed=0).m == 37

    def test_too_many_edges(self):
        with pytest.raises(InvalidParameterError):
            gnm_graph(4, 7)


class TestBarabasiAlbert:
    def test_edge_count(self):
        g = barabasi_albert_graph(50, 3, seed=2)
        # star seed gives m edges, then m per newcomer
        assert g.m == 3 + 3 * (50 - 4)

    def test_connected_core(self):
        from repro.graph import is_connected

        assert is_connected(barabasi_albert_graph(40, 2, seed=1))

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            barabasi_albert_graph(3, 3)


class TestPowerlawCluster:
    def test_has_triangles(self):
        g = powerlaw_cluster_graph(200, 4, 0.8, seed=3)
        assert count_k_cliques(g, 3) > 50

    def test_more_clustering_with_higher_p(self):
        lo = powerlaw_cluster_graph(300, 4, 0.0, seed=4)
        hi = powerlaw_cluster_graph(300, 4, 0.9, seed=4)
        assert count_k_cliques(hi, 3) > count_k_cliques(lo, 3)


class TestPlanted:
    def test_planted_clique_present(self):
        g = planted_clique_graph(40, 8, 0.05, seed=1)
        assert g.is_clique(range(8))

    def test_planted_clique_too_big(self):
        with pytest.raises(InvalidParameterError):
            planted_clique_graph(5, 6, 0.1)

    def test_near_cliques_block_density(self):
        g = planted_near_cliques_graph(
            30, [(10, 1.0)], background_p=0.0, seed=0
        )
        assert g.is_clique(range(10))

    def test_near_cliques_capacity_check(self):
        with pytest.raises(InvalidParameterError):
            planted_near_cliques_graph(10, [(8, 1.0), (8, 1.0)])


class TestCavemanAndGrid:
    def test_caveman_no_rewire_is_cliques(self):
        g = relaxed_caveman_graph(4, 5, 0.0, seed=0)
        for c in range(4):
            assert g.is_clique(range(c * 5, (c + 1) * 5))

    def test_caveman_invalid(self):
        with pytest.raises(InvalidParameterError):
            relaxed_caveman_graph(0, 5, 0.1)

    def test_grid_is_triangle_free(self):
        g = grid_graph(8, 8)
        assert count_k_cliques(g, 3) == 0

    def test_grid_diagonals_add_triangles(self):
        g = grid_graph(8, 8, diagonal_p=1.0, seed=1)
        assert count_k_cliques(g, 3) > 0

    def test_grid_edge_count(self):
        g = grid_graph(3, 4)
        assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical


class TestCombinators:
    def test_overlapping_communities_nonempty(self):
        g = overlapping_community_graph(
            100, n_communities=10, community_size=15, intra_p=0.5, seed=1
        )
        assert g.m > 0

    def test_disjoint_union_offsets(self):
        from repro.graph import Graph

        a = Graph(2, [(0, 1)])
        b = Graph(3, [(0, 2)])
        u = disjoint_union([a, b])
        assert u.n == 5
        assert sorted(u.edges()) == [(0, 1), (2, 4)]
