"""RunOptions: construction, resolve() merging and entry-point parity."""

import io

import pytest

from repro import (
    InvalidParameterError,
    MetricsRecorder,
    ParallelConfig,
    RunOptions,
    core_app,
    densest_subgraph,
    greedy_peeling,
    kcl,
    kcl_exact,
    kcl_sample,
)
from repro.core import SCTIndex, sctl, sctl_plus, sctl_star
from repro.core.profile import density_profile
from repro.core.reductions import kp_computation
from repro.core.sampling import sctl_star_sample
from repro.obs import NULL_RECORDER
from repro.options import warn_unsupported
from repro.resilience import NULL_BUDGET, RunBudget


class TestConstruction:
    def test_defaults(self):
        opts = RunOptions()
        assert opts.recorder is NULL_RECORDER
        assert opts.budget is NULL_BUDGET
        assert opts.checkpoint is None
        assert opts.resume is False
        assert opts.parallel is None
        assert opts.workers == 1
        for name in ("recorder", "budget", "checkpoint", "resume", "parallel"):
            assert opts.is_default(name)

    def test_none_normalised_to_null_objects(self):
        opts = RunOptions(recorder=None, budget=None)
        assert opts.recorder is NULL_RECORDER
        assert opts.budget is NULL_BUDGET

    def test_int_parallel_normalised_to_config(self):
        opts = RunOptions(parallel=4)
        assert isinstance(opts.parallel, ParallelConfig)
        assert opts.parallel.workers == 4
        assert opts.workers == 4

    def test_parallel_one_is_non_default_but_disabled(self):
        opts = RunOptions(parallel=1)
        assert opts.parallel.workers == 1
        assert not opts.parallel.enabled

    def test_bool_parallel_rejected(self):
        with pytest.raises(InvalidParameterError):
            RunOptions(parallel=True)

    def test_bad_resume_rejected(self):
        with pytest.raises(InvalidParameterError):
            RunOptions(resume=1)

    def test_frozen(self):
        opts = RunOptions()
        with pytest.raises(Exception):
            opts.resume = True

    def test_replace(self):
        opts = RunOptions(parallel=2)
        changed = opts.replace(resume=True)
        assert changed.resume is True
        assert changed.parallel == opts.parallel
        assert opts.resume is False


class TestResolve:
    def test_no_arguments(self):
        assert RunOptions.resolve() == RunOptions()

    def test_legacy_only(self):
        rec = MetricsRecorder()
        opts = RunOptions.resolve(None, recorder=rec, parallel=3)
        assert opts.recorder is rec
        assert opts.workers == 3

    def test_options_only(self):
        given = RunOptions(parallel=2, resume=False)
        assert RunOptions.resolve(given) == given

    def test_disjoint_merge(self):
        rec = MetricsRecorder()
        opts = RunOptions.resolve(RunOptions(parallel=2), recorder=rec)
        assert opts.recorder is rec
        assert opts.workers == 2

    def test_agreeing_values_merge(self):
        rec = MetricsRecorder()
        opts = RunOptions.resolve(
            RunOptions(recorder=rec, parallel=2), recorder=rec, parallel=2
        )
        assert opts.recorder is rec
        assert opts.workers == 2

    def test_conflicting_values_raise(self):
        with pytest.raises(InvalidParameterError, match="conflicting"):
            RunOptions.resolve(
                RunOptions(recorder=MetricsRecorder()),
                recorder=MetricsRecorder(),
            )

    def test_conflicting_parallel_raises(self):
        with pytest.raises(InvalidParameterError, match="parallel"):
            RunOptions.resolve(RunOptions(parallel=2), parallel=4)

    def test_default_legacy_never_conflicts(self):
        given = RunOptions(recorder=MetricsRecorder(), parallel=2)
        opts = RunOptions.resolve(
            given, recorder=NULL_RECORDER, budget=NULL_BUDGET,
            checkpoint=None, resume=False, parallel=None,
        )
        assert opts == given

    def test_unknown_keyword_rejected(self):
        with pytest.raises(InvalidParameterError, match="workerz"):
            RunOptions.resolve(workerz=2)

    def test_non_runoptions_rejected(self):
        with pytest.raises(InvalidParameterError):
            RunOptions.resolve({"parallel": 2})


class TestParallelConfig:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ParallelConfig(workers=0)
        with pytest.raises(InvalidParameterError):
            ParallelConfig(workers=2, chunks_per_worker=0)
        with pytest.raises(InvalidParameterError):
            ParallelConfig(workers=2, start_method="no-such-method")

    def test_normalize(self):
        assert ParallelConfig.normalize(None) is None
        cfg = ParallelConfig(workers=2)
        assert ParallelConfig.normalize(cfg) is cfg
        assert ParallelConfig.normalize(3).workers == 3
        with pytest.raises(InvalidParameterError):
            ParallelConfig.normalize(True)


class TestEntryPointParity:
    """options= must behave exactly like the legacy keywords."""

    def test_sctl_family(self, caveman):
        index = SCTIndex.build(caveman)
        for fn, kwargs in (
            (sctl, {}),
            (sctl_plus, {"graph": caveman}),
            (sctl_star, {"graph": caveman}),
        ):
            rec_a, rec_b = MetricsRecorder(), MetricsRecorder()
            legacy = fn(index, 3, iterations=4, recorder=rec_a, **kwargs)
            new = fn(
                index, 3, iterations=4,
                options=RunOptions(recorder=rec_b), **kwargs
            )
            assert legacy.vertices == new.vertices
            assert legacy.stats["weights"] == new.stats["weights"]
            assert rec_a.counters == rec_b.counters

    def test_build_options_equals_legacy(self, caveman):
        rec_a, rec_b = MetricsRecorder(), MetricsRecorder()
        a = SCTIndex.build(caveman, recorder=rec_a)
        b = SCTIndex.build(caveman, options=RunOptions(recorder=rec_b))
        buf_a, buf_b = io.StringIO(), io.StringIO()
        a._write(buf_a)
        b._write(buf_b)
        assert buf_a.getvalue() == buf_b.getvalue()
        assert rec_a.counters == rec_b.counters

    def test_sample_options_equals_legacy(self, caveman):
        index = SCTIndex.build(caveman)
        legacy = sctl_star_sample(index, 3, sample_size=50, seed=7)
        new = sctl_star_sample(
            index, 3, sample_size=50, seed=7, options=RunOptions()
        )
        assert legacy.vertices == new.vertices

    def test_profile_and_kp_accept_options(self, caveman):
        index = SCTIndex.build(caveman)
        prof_a = density_profile(index, k_values=[3], iterations=2)
        prof_b = density_profile(
            index, k_values=[3], iterations=2, options=RunOptions(parallel=2)
        )
        assert prof_a.results[3].vertices == prof_b.results[3].vertices
        part_a = kp_computation(index, 3)
        part_b = kp_computation(index, 3, options=RunOptions(parallel=2))
        assert part_a.partition_of == part_b.partition_of

    def test_facade_conflict_raises(self, caveman):
        with pytest.raises(InvalidParameterError, match="conflicting"):
            densest_subgraph(
                caveman, 3, parallel=2, options=RunOptions(parallel=4)
            )

    def test_facade_options_equals_legacy_kwargs(self, caveman, tmp_path):
        budget = RunBudget(wall_seconds=1e6)
        legacy = densest_subgraph(
            caveman, 3, method="sctl*", iterations=3,
            budget=budget, checkpoint=str(tmp_path / "a"),
        )
        new = densest_subgraph(
            caveman, 3, method="sctl*", iterations=3,
            options=RunOptions(budget=budget, checkpoint=str(tmp_path / "b")),
        )
        assert legacy.vertices == new.vertices
        assert legacy.stats["weights"] == new.stats["weights"]


class TestBaselineWarnings:
    def test_each_baseline_warns_once_on_nondefault_knobs(self, caveman):
        opts = RunOptions(parallel=2)
        for fn in (kcl, greedy_peeling, core_app):
            with pytest.warns(UserWarning, match="ignored"):
                fn(caveman, 3, options=opts)
        with pytest.warns(UserWarning, match="KCL-Sample"):
            kcl_sample(caveman, 3, sample_size=20, options=opts)
        with pytest.warns(UserWarning, match="KCL-Exact"):
            kcl_exact(caveman, 3, options=opts)

    def test_default_options_do_not_warn(self, caveman, recwarn):
        kcl(caveman, 3, options=RunOptions())
        greedy_peeling(caveman, 3, options=None)
        assert not [w for w in recwarn.list
                    if issubclass(w.category, UserWarning)]

    def test_warn_unsupported_supported_knobs_exempt(self):
        opts = RunOptions(parallel=2)
        warn_unsupported(opts, "X", supported=("parallel",))  # no warning
