"""Incremental SCT*-Index maintenance (``repro.core.update``).

The contract under test is *byte parity*: after any sequence of edge
batches, the incrementally-maintained index is byte-identical (in the
v2 on-disk encoding) to ``SCTIndex.build`` run from scratch on the
updated graph — serial or parallel.  Everything else (dirty-region
accounting, warm-started re-refinement, budget behaviour) layers on top
of that invariant.
"""

import io
import random
import time

import pytest

from repro import densest_subgraph
from repro.core import (
    DirtyRegion,
    SCTIndex,
    apply_edge_updates,
    compute_update,
    sctl,
    sctl_plus,
    sctl_star,
)
from repro.errors import BudgetExhausted, InvalidParameterError
from repro.graph import Graph, gnp_graph, relaxed_caveman_graph
from repro.obs import MetricsRecorder
from repro.options import RunOptions
from repro.resilience import RunBudget


def index_bytes(index: SCTIndex) -> bytes:
    """The index's canonical v2 encoding (the parity oracle)."""
    buffer = io.BytesIO()
    index._write_v2(buffer)
    return buffer.getvalue()


def edges_of(graph: Graph):
    return sorted(
        (u, v)
        for u in range(graph.n)
        for v in graph.neighbors(u)
        if u < v
    )


def random_batch(graph: Graph, rng: random.Random, n_ins=3, n_dels=3):
    """A random, valid (inserts, deletes) pair for ``graph``."""
    present = edges_of(graph)
    absent = [
        (u, v)
        for u in range(graph.n)
        for v in range(u + 1, graph.n)
        if not graph.has_edge(u, v)
    ]
    deletes = rng.sample(present, min(n_dels, len(present)))
    inserts = rng.sample(absent, min(n_ins, len(absent)))
    return inserts, deletes


def blocks_graph(n_blocks=40, bs=30, p=0.9, cross=300, seed=2) -> Graph:
    """Dense same-size blocks plus random cross edges (deep SCT trees)."""
    rng = random.Random(seed)
    n = n_blocks * bs
    edges = set()
    for b in range(n_blocks):
        base = b * bs
        for i in range(bs):
            for j in range(i + 1, bs):
                if rng.random() < p:
                    edges.add((base + i, base + j))
    added = 0
    while added < cross:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and (min(u, v), max(u, v)) not in edges:
            edges.add((min(u, v), max(u, v)))
            added += 1
    return Graph(n, sorted(edges))


class TestEdgeBatchValidation:
    def test_insert_existing_edge_rejected(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(InvalidParameterError, match="already"):
            apply_edge_updates(g, inserts=[(0, 1)])

    def test_delete_missing_edge_rejected(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(InvalidParameterError, match="not present"):
            apply_edge_updates(g, deletes=[(1, 2)])

    def test_self_loop_rejected(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(InvalidParameterError, match="self-loop"):
            apply_edge_updates(g, inserts=[(2, 2)])

    def test_out_of_range_vertex_rejected(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(InvalidParameterError, match="out of range"):
            apply_edge_updates(g, inserts=[(0, 7)])

    def test_edge_in_both_batches_rejected(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(InvalidParameterError, match="both"):
            apply_edge_updates(g, inserts=[(1, 2)], deletes=[(2, 1)])

    def test_malformed_pair_rejected(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(InvalidParameterError, match="pairs"):
            apply_edge_updates(g, inserts=["nope"])

    def test_inputs_left_untouched(self):
        g = gnp_graph(12, 0.4, seed=5)
        before = edges_of(g)
        updated, ins, dels = apply_edge_updates(
            g, inserts=[(0, 11)] if not g.has_edge(0, 11) else [],
            deletes=[before[0]],
        )
        assert edges_of(g) == before  # the input graph is immutable
        assert updated is not g
        assert updated.m == g.m + len(ins) - len(dels)


class TestParity:
    """The incremental index must be byte-identical to a fresh build."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        g = gnp_graph(40, 0.25, seed=seed)
        index = SCTIndex.build(g)
        inserts, deletes = random_batch(g, rng)
        region = compute_update(index, g, inserts, deletes)
        fresh_graph, _, _ = apply_edge_updates(g, inserts, deletes)
        assert edges_of(region.graph) == edges_of(fresh_graph)
        assert index_bytes(region.index) == index_bytes(
            SCTIndex.build(fresh_graph)
        )

    def test_update_sequence_stays_exact(self):
        rng = random.Random(77)
        g = gnp_graph(60, 0.2, seed=9)
        index = SCTIndex.build(g)
        for _ in range(10):
            inserts, deletes = random_batch(g, rng, n_ins=2, n_dels=2)
            region = compute_update(index, g, inserts, deletes)
            g, index = region.graph, region.index
        assert index_bytes(index) == index_bytes(SCTIndex.build(g))

    def test_threshold_index_parity(self):
        rng = random.Random(4)
        g = gnp_graph(36, 0.35, seed=4)
        index = SCTIndex.build(g, threshold=4)
        inserts, deletes = random_batch(g, rng)
        region = compute_update(index, g, inserts, deletes)
        fresh_graph, _, _ = apply_edge_updates(g, inserts, deletes)
        assert region.index.threshold == 4
        assert index_bytes(region.index) == index_bytes(
            SCTIndex.build(fresh_graph, threshold=4)
        )

    def test_tiny_graphs(self):
        g = Graph(2, [])
        index = SCTIndex.build(g)
        region = compute_update(index, g, inserts=[(0, 1)])
        assert index_bytes(region.index) == index_bytes(
            SCTIndex.build(Graph(2, [(0, 1)]))
        )
        back = compute_update(region.index, region.graph, deletes=[(0, 1)])
        assert index_bytes(back.index) == index_bytes(index)

    def test_empty_batch_is_identity(self):
        g = gnp_graph(20, 0.3, seed=1)
        index = SCTIndex.build(g)
        region = compute_update(index, g)
        assert region.dirty_roots == 0
        assert region.dirty_vertices == frozenset()
        assert index_bytes(region.index) == index_bytes(index)

    def test_compute_update_leaves_inputs_untouched(self):
        g = gnp_graph(30, 0.3, seed=8)
        index = SCTIndex.build(g)
        graph_before = edges_of(g)
        index_before = index_bytes(index)
        inserts, deletes = random_batch(g, random.Random(8))
        compute_update(index, g, inserts, deletes)
        assert edges_of(g) == graph_before
        assert index_bytes(index) == index_before

    def test_deep_clique_graph_serial_and_parallel(self):
        """Table-2 scale: 1200 vertices of dense blocks, workers=4."""
        g = blocks_graph(n_blocks=40, bs=30, p=0.9, cross=300, seed=2)
        index = SCTIndex.build(g)
        u, v = next(iter(edges_of(g)))
        region = compute_update(index, g, deletes=[(u, v)])
        serial = SCTIndex.build(region.graph)
        assert index_bytes(region.index) == index_bytes(serial)
        parallel = SCTIndex.build(
            region.graph, options=RunOptions(parallel=4)
        )
        assert index_bytes(region.index) == index_bytes(parallel)


class TestDirtyRegion:
    def test_summary_and_accounting(self):
        g = gnp_graph(40, 0.25, seed=3)
        index = SCTIndex.build(g)
        inserts, deletes = random_batch(g, random.Random(3))
        recorder = MetricsRecorder()
        region = compute_update(
            index, g, inserts, deletes,
            options=RunOptions(recorder=recorder),
        )
        assert isinstance(region, DirtyRegion)
        summary = region.summary()
        assert summary["inserts"] == len(inserts)
        assert summary["deletes"] == len(deletes)
        assert region.dirty_roots + region.reused_roots <= region.n_roots
        assert 0.0 <= region.dirty_fraction <= 1.0
        counters = recorder.counters
        assert counters["update/edges_inserted"] == len(inserts)
        assert counters["update/edges_deleted"] == len(deletes)
        assert counters["update/dirty_roots"] == region.dirty_roots

    def test_intersects(self):
        g = gnp_graph(30, 0.3, seed=6)
        index = SCTIndex.build(g)
        u, v = edges_of(g)[0]
        region = compute_update(index, g, deletes=[(u, v)])
        assert region.intersects([u])
        assert region.intersects([v])
        clean = [x for x in range(g.n) if x not in region.dirty_vertices]
        if clean:
            assert not region.intersects(clean[:1])
        assert not region.intersects([])

    def test_update_edges_always_dirty(self):
        g = gnp_graph(30, 0.3, seed=2)
        index = SCTIndex.build(g)
        inserts, deletes = random_batch(g, random.Random(11))
        region = compute_update(index, g, inserts, deletes)
        for u, v in list(inserts) + list(deletes):
            assert u in region.dirty_vertices
            assert v in region.dirty_vertices


class TestBudget:
    def test_exhaustion_raises_and_preserves_inputs(self):
        g = blocks_graph(n_blocks=10, bs=16, p=0.8, cross=40, seed=1)
        index = SCTIndex.build(g)
        before = index_bytes(index)
        u, v = edges_of(g)[0]
        budget = RunBudget(wall_seconds=0.0)
        with pytest.raises(BudgetExhausted):
            compute_update(
                index, g, deletes=[(u, v)],
                options=RunOptions(budget=budget),
            )
        assert index_bytes(index) == before
        # and the same call without the budget still commits cleanly
        region = compute_update(index, g, deletes=[(u, v)])
        assert index_bytes(region.index) == index_bytes(
            SCTIndex.build(region.graph)
        )


class TestIncrementalityIsReal:
    def test_single_edge_update_beats_full_rebuild(self):
        """Lenient floor (the bench asserts the paper-scale 10x)."""
        g = blocks_graph(n_blocks=24, bs=24, p=0.9, cross=150, seed=5)
        t0 = time.perf_counter()
        index = SCTIndex.build(g)
        full_s = time.perf_counter() - t0
        u, v = edges_of(g)[0]
        # steady state: the first update pays the one-off view build
        region = compute_update(index, g, deletes=[(u, v)])
        timings = []
        for _ in range(5):
            t0 = time.perf_counter()
            back = compute_update(
                region.index, region.graph, inserts=[(u, v)]
            )
            timings.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            region = compute_update(
                back.index, back.graph, deletes=[(u, v)]
            )
            timings.append(time.perf_counter() - t0)
        update_s = sorted(timings)[len(timings) // 2]
        assert update_s * 3 < full_s, (
            f"incremental update {update_s:.4f}s vs full build {full_s:.4f}s"
        )
        assert region.dirty_fraction < 0.5


class TestWarmStart:
    def test_zero_seed_matches_cold_start(self):
        g = relaxed_caveman_graph(6, 6, 0.1, seed=2)
        index = SCTIndex.build(g)
        cold = sctl(index, 3, iterations=6)
        seeded = sctl(index, 3, iterations=6, warm_start=[0] * g.n)
        assert seeded.vertices == cold.vertices
        assert seeded.stats["weights"] == cold.stats["weights"]

    @pytest.mark.parametrize("fn", [sctl, sctl_star, sctl_plus])
    def test_validation(self, fn):
        g = relaxed_caveman_graph(4, 5, 0.1, seed=1)
        index = SCTIndex.build(g)
        kwargs = {"graph": g} if fn is not sctl else {}
        with pytest.raises(InvalidParameterError, match="warm_start"):
            fn(index, 3, warm_start=[0] * (g.n + 1), **kwargs)
        with pytest.raises(InvalidParameterError, match="non-negative"):
            fn(index, 3, warm_start=[-1] + [0] * (g.n - 1), **kwargs)

    def test_reseeding_after_update_converges_no_worse(self):
        g = gnp_graph(40, 0.3, seed=7)
        index = SCTIndex.build(g)
        first = sctl_star(index, 3, iterations=8, graph=g)
        u, v = edges_of(g)[0]
        region = compute_update(index, g, deletes=[(u, v)])
        cold = sctl_star(region.index, 3, iterations=8, graph=region.graph)
        warm = sctl_star(
            region.index, 3, iterations=8, graph=region.graph,
            warm_start=first.stats["weights"],
        )
        assert warm.density >= cold.density - 1e-9

    def test_facade_parity_with_updated_index(self):
        """The updated index answers queries exactly like a fresh one."""
        g = gnp_graph(45, 0.25, seed=10)
        index = SCTIndex.build(g)
        inserts, deletes = random_batch(g, random.Random(10))
        region = compute_update(index, g, inserts, deletes)
        via_update = densest_subgraph(
            region.graph, 3, method="sctl*", index=region.index
        )
        fresh = densest_subgraph(region.graph, 3, method="sctl*")
        assert via_update.vertices == fresh.vertices
        assert via_update.density == fresh.density
