"""Unit tests for connected-component utilities."""

from repro.graph import (
    Graph,
    component_of,
    connected_components,
    disjoint_union,
    gnp_graph,
    is_connected,
)


class TestComponents:
    def test_single_component(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert connected_components(g) == [[0, 1, 2]]

    def test_isolated_vertices(self):
        g = Graph(4, [(1, 2)])
        assert connected_components(g) == [[0], [1, 2], [3]]

    def test_union_of_random_graphs(self):
        a = gnp_graph(10, 0.5, seed=1)
        b = gnp_graph(8, 0.5, seed=2)
        u = disjoint_union([a, b])
        comps = connected_components(u)
        sizes = sorted(len(c) for c in comps)
        assert sum(sizes) == 18
        # the dense halves stay internally connected
        assert any(set(c) <= set(range(10)) for c in comps)

    def test_component_of(self):
        g = Graph(5, [(0, 1), (3, 4)])
        assert component_of(g, 0) == [0, 1]
        assert component_of(g, 4) == [3, 4]
        assert component_of(g, 2) == [2]

    def test_is_connected(self):
        assert is_connected(Graph(1))
        assert is_connected(Graph(0))
        assert is_connected(Graph(2, [(0, 1)]))
        assert not is_connected(Graph(2))
