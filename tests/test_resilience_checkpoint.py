"""Unit tests for repro.resilience.checkpoint and crash-safe index saves."""

import itertools
import os

import pytest

from repro.core import SCTIndex
from repro.errors import CheckpointError
from repro.graph import relaxed_caveman_graph
from repro.resilience import Checkpointer, atomic_writer, require_match


def fake_clock(start: int = 0):
    counter = itertools.count(start)
    return lambda: next(counter)


class TestAtomicWriter:
    def test_writes_file(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_writer(target) as handle:
            handle.write("hello\n")
        assert target.read_text() == "hello\n"
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_failure_preserves_old_content(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old\n")
        with pytest.raises(RuntimeError):
            with atomic_writer(target) as handle:
                handle.write("half-written new content")
                raise RuntimeError("crash mid-write")
        assert target.read_text() == "old\n"
        # the temp file must not leak either
        assert os.listdir(tmp_path) == ["out.txt"]


class TestCheckpointer:
    def test_roundtrip(self, tmp_path):
        ckpt = Checkpointer(tmp_path)
        payload = {"k": 4, "weights": [0, 2, 5], "name": "x"}
        ckpt.save("sctl-weights", payload)
        assert ckpt.has("sctl-weights")
        assert ckpt.load("sctl-weights") == payload

    def test_load_missing_returns_none(self, tmp_path):
        assert Checkpointer(tmp_path).load("nothing") is None

    def test_clear(self, tmp_path):
        ckpt = Checkpointer(tmp_path)
        ckpt.save("a", {"x": 1})
        ckpt.clear("a")
        assert not ckpt.has("a")
        ckpt.clear("a")  # idempotent

    def test_kinds_are_independent(self, tmp_path):
        ckpt = Checkpointer(tmp_path)
        ckpt.save("a", {"x": 1})
        ckpt.save("b", {"x": 2})
        assert ckpt.load("a") == {"x": 1}
        assert ckpt.load("b") == {"x": 2}

    def test_ensure_normalises(self, tmp_path):
        assert Checkpointer.ensure(None) is None
        ckpt = Checkpointer(tmp_path)
        assert Checkpointer.ensure(ckpt) is ckpt
        made = Checkpointer.ensure(str(tmp_path))
        assert isinstance(made, Checkpointer)

    def test_due_respects_interval(self, tmp_path):
        ckpt = Checkpointer(tmp_path, interval_seconds=10, clock=fake_clock())
        assert ckpt.due("a")  # never saved: always due
        ckpt.save("a", {"x": 1})
        assert not ckpt.due("a")
        # the fake clock advances one second per call; not due until +10
        for _ in range(8):
            assert not ckpt.due("a")
        assert ckpt.due("a")

    def test_zero_interval_always_due(self, tmp_path):
        ckpt = Checkpointer(tmp_path, interval_seconds=0)
        ckpt.save("a", {"x": 1})
        assert ckpt.due("a")


class TestCorruption:
    def _saved(self, tmp_path):
        ckpt = Checkpointer(tmp_path)
        ckpt.save("kind", {"k": 3, "weights": [1, 2]})
        return ckpt, ckpt.path_for("kind")

    def test_corrupt_header(self, tmp_path):
        ckpt, path = self._saved(tmp_path)
        lines = open(path).read().splitlines()
        with open(path, "w") as handle:
            handle.write("not json{\n" + lines[1] + "\n")
        with pytest.raises(CheckpointError, match="header"):
            ckpt.load("kind")

    def test_wrong_format_version(self, tmp_path):
        ckpt, path = self._saved(tmp_path)
        lines = open(path).read().splitlines()
        with open(path, "w") as handle:
            handle.write('{"format": 999, "kind": "kind", "checksum": 0}\n')
            handle.write(lines[1] + "\n")
        with pytest.raises(CheckpointError, match="format"):
            ckpt.load("kind")

    def test_kind_mismatch(self, tmp_path):
        ckpt, path = self._saved(tmp_path)
        os.replace(path, Checkpointer(tmp_path).path_for("other"))
        with pytest.raises(CheckpointError, match="kind"):
            ckpt.load("other")

    def test_truncated_payload(self, tmp_path):
        ckpt, path = self._saved(tmp_path)
        lines = open(path).read().splitlines()
        with open(path, "w") as handle:
            handle.write(lines[0] + "\n")
        with pytest.raises(CheckpointError, match="truncated"):
            ckpt.load("kind")

    def test_checksum_mismatch(self, tmp_path):
        ckpt, path = self._saved(tmp_path)
        lines = open(path).read().splitlines()
        with open(path, "w") as handle:
            handle.write(lines[0] + "\n")
            handle.write(lines[1][:-2] + "}\n")  # clip the payload
        with pytest.raises(CheckpointError, match="checksum"):
            ckpt.load("kind")


class TestRequireMatch:
    def test_match_passes(self):
        require_match({"k": 4, "n": 10, "extra": 1}, {"k": 4, "n": 10}, "kind")

    def test_mismatch_names_field(self):
        with pytest.raises(CheckpointError, match="k="):
            require_match({"k": 4}, {"k": 5}, "kind")

    def test_missing_field_is_mismatch(self):
        with pytest.raises(CheckpointError):
            require_match({}, {"n": 3}, "kind")


class TestCrashSafeIndexSave:
    """Satellite: a fault mid-save must leave the old index file readable."""

    def test_mid_save_fault_preserves_old_index(self, tmp_path, monkeypatch):
        graph = relaxed_caveman_graph(5, 5, 0.1, seed=2)
        index = SCTIndex.build(graph)
        target = tmp_path / "graph.sct"
        index.save(target)
        before = target.read_bytes()

        def exploding_write_v2(self, handle):
            handle.write(b"garbage that must never land in the target\n")
            raise OSError("disk full")

        monkeypatch.setattr(SCTIndex, "_write_v2", exploding_write_v2)
        with pytest.raises(OSError):
            index.save(target)
        monkeypatch.undo()

        assert target.read_bytes() == before
        assert os.listdir(tmp_path) == ["graph.sct"]  # no stray temp files
        reloaded = SCTIndex.load(target)
        assert reloaded.n_vertices == index.n_vertices
        assert reloaded.count_k_cliques(3) == index.count_k_cliques(3)

    def test_mid_save_fault_preserves_old_index_v1(self, tmp_path, monkeypatch):
        graph = relaxed_caveman_graph(5, 5, 0.1, seed=2)
        index = SCTIndex.build(graph)
        target = tmp_path / "graph.sct"
        index.save(target, format=1)
        before = target.read_bytes()

        def exploding_write(self, handle):
            handle.write("garbage that must never land in the target\n")
            raise OSError("disk full")

        monkeypatch.setattr(SCTIndex, "_write", exploding_write)
        with pytest.raises(OSError):
            index.save(target, format=1)
        monkeypatch.undo()

        assert target.read_bytes() == before
        assert os.listdir(tmp_path) == ["graph.sct"]
        reloaded = SCTIndex.load(target)
        assert reloaded.count_k_cliques(3) == index.count_k_cliques(3)
