"""The KCL-Exact Frank-Wolfe baseline."""

import pytest

from repro.baselines import kcl_exact
from repro.cliques import count_k_cliques_naive, densest_subgraph_bruteforce
from repro.errors import InvalidParameterError
from repro.graph import Graph, gnp_graph


class TestKCLExact:
    def test_empty_graph(self):
        result = kcl_exact(Graph(4), 3)
        assert result.vertices == []
        assert result.exact

    def test_invalid_iterations(self):
        with pytest.raises(InvalidParameterError):
            kcl_exact(Graph.complete(4), 3, initial_iterations=0)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [3, 4])
    def test_matches_bruteforce(self, seed, k):
        g = gnp_graph(10, 0.55, seed=seed)
        result = kcl_exact(g, k, initial_iterations=5, max_total_iterations=80)
        _, optimal = densest_subgraph_bruteforce(g, k)
        assert result.density == pytest.approx(optimal)
        assert result.exact

    def test_k6_plus_k4(self, k6_plus_k4):
        result = kcl_exact(k6_plus_k4, 3, initial_iterations=5)
        assert result.vertices == [0, 1, 2, 3, 4, 5]
        assert result.density == pytest.approx(20 / 6)

    def test_memory_stat_equals_clique_count(self, caveman):
        result = kcl_exact(caveman, 3, initial_iterations=3, max_total_iterations=30)
        assert result.stats["cliques_stored"] == count_k_cliques_naive(caveman, 3)

    def test_reported_count_is_true_count(self, small_random):
        result = kcl_exact(small_random, 3, initial_iterations=3, max_total_iterations=30)
        sub, _ = small_random.induced_subgraph(result.vertices)
        assert count_k_cliques_naive(sub, 3) == result.clique_count

    def test_fallback_flag_recorded(self, small_random):
        # a tiny iteration budget forces the guaranteed-exact fallback
        result = kcl_exact(small_random, 3, initial_iterations=1, max_total_iterations=1)
        assert result.exact
        assert "fallback" in result.stats
