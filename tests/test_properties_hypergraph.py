"""Property-based tests for the hypergraph layer and the decomposition."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import Graph
from repro.hypergraph import (
    Hypergraph,
    density_friendly_decomposition,
    exact_densest,
    peel_densest,
)


@st.composite
def hypergraphs(draw, max_n=9, max_edges=12):
    n = draw(st.integers(min_value=1, max_value=max_n))
    n_edges = draw(st.integers(min_value=0, max_value=max_edges))
    edges = []
    for _ in range(n_edges):
        size = draw(st.integers(min_value=1, max_value=min(4, n)))
        members = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size, max_size=size, unique=True,
            )
        )
        edges.append(tuple(members))
    return Hypergraph(n, edges)


def _bruteforce_densest(h: Hypergraph) -> Fraction:
    from itertools import combinations

    best = Fraction(0)
    support = h.vertex_support()
    for size in range(1, len(support) + 1):
        for combo in combinations(support, size):
            density = h.density(combo)
            if density > best:
                best = density
    return best


@settings(max_examples=40, deadline=None)
@given(hypergraphs())
def test_exact_densest_matches_bruteforce(h):
    _, density = exact_densest(h)
    assert density == _bruteforce_densest(h)


@settings(max_examples=40, deadline=None)
@given(hypergraphs())
def test_peeling_within_rank_factor(h):
    _, optimal = exact_densest(h)
    _, peeled = peel_densest(h)
    assert peeled <= optimal
    if optimal > 0:
        assert peeled >= optimal / max(h.rank(), 1)


@settings(max_examples=40, deadline=None)
@given(hypergraphs())
def test_decomposition_invariants(h):
    levels = density_friendly_decomposition(h)
    # shells partition the vertex set
    seen = set()
    for level in levels:
        assert not (seen & set(level.vertices))
        seen |= set(level.vertices)
    assert seen == set(range(h.n))
    # densities strictly decrease
    densities = [level.density for level in levels]
    assert all(a > b for a, b in zip(densities, densities[1:]))
    # the first shell achieves the optimal density
    _, optimal = exact_densest(h)
    if levels and optimal > 0:
        assert levels[0].density == optimal
        assert h.density(levels[0].vertices) == optimal


@settings(max_examples=30, deadline=None)
@given(hypergraphs())
def test_density_is_monotone_under_restriction(h):
    support = h.vertex_support()
    if not support:
        return
    # restricting can only lose hyperedges
    half = support[: max(1, len(support) // 2)]
    assert h.restricted_to(half).m <= h.m
    assert h.edges_inside(half) == h.restricted_to(half).m
