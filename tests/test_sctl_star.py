"""SCTL+ / SCTL* (Algorithm 5): optimisations must not change quality."""

import pytest

from repro.cliques import count_k_cliques_naive, densest_subgraph_bruteforce
from repro.core import SCTIndex, sctl, sctl_plus, sctl_star
from repro.graph import Graph, gnp_graph


class TestBasics:
    def test_empty_graph(self):
        result = sctl_star(SCTIndex.build(Graph(4)), 3)
        assert result.vertices == []
        assert result.algorithm == "SCTL*"

    def test_algorithm_names(self, small_random):
        index = SCTIndex.build(small_random)
        assert sctl_star(index, 3).algorithm == "SCTL*"
        assert sctl_plus(index, 3).algorithm == "SCTL+"
        assert (
            sctl_star(index, 3, use_reductions=False, use_batch=False).algorithm
            == "SCTL"
        )

    def test_starts_from_max_clique(self, k6_plus_k4):
        # even 1 iteration cannot fall below the max-clique density
        index = SCTIndex.build(k6_plus_k4)
        result = sctl_star(index, 3, iterations=1)
        assert result.density >= 20 / 6 - 1e-9

    def test_reported_count_is_true_count(self, caveman):
        index = SCTIndex.build(caveman)
        result = sctl_star(index, 3, iterations=5)
        sub, _ = caveman.induced_subgraph(result.vertices)
        assert count_k_cliques_naive(sub, 3) == result.clique_count


class TestOptimisationsPreserveQuality:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("k", [3, 4])
    def test_all_variants_bounded_by_optimum(self, seed, k):
        g = gnp_graph(11, 0.55, seed=seed)
        index = SCTIndex.build(g)
        if index.max_clique_size < k:
            pytest.skip("no k-clique")
        _, optimal = densest_subgraph_bruteforce(g, k)
        for variant in (
            sctl_star(index, k, iterations=20),
            sctl_plus(index, k, iterations=20),
            sctl_star(index, k, iterations=20, use_reductions=False),
        ):
            assert variant.density <= optimal + 1e-9
            assert variant.upper_bound >= optimal - 1e-9

    @pytest.mark.parametrize("seed", range(5))
    def test_star_at_least_as_good_as_max_clique_and_near_sctl(self, seed):
        g = gnp_graph(12, 0.5, seed=seed)
        index = SCTIndex.build(g)
        if index.max_clique_size < 3:
            pytest.skip("no triangle")
        base = sctl(index, 3, iterations=25)
        star = sctl_star(index, 3, iterations=25)
        # reductions+batch change update order, but quality stays comparable
        assert star.density >= 0.9 * base.density

    def test_batch_reduces_update_count(self, caveman):
        index = SCTIndex.build(caveman)
        with_batch = sctl_star(index, 3, iterations=5)
        without = sctl_plus(index, 3, iterations=5)
        assert (
            with_batch.stats["total_weight_updates"]
            <= without.stats["total_weight_updates"]
        )

    def test_reductions_shrink_processed_cliques(self, two_partitions):
        index = SCTIndex.build(two_partitions)
        reduced = sctl_star(index, 3, iterations=8)
        plain = sctl_star(index, 3, iterations=8, use_reductions=False)
        assert (
            reduced.stats["total_cliques_processed"]
            <= plain.stats["total_cliques_processed"]
        )


class TestInstrumentation:
    def test_iteration_stats_collected(self, caveman):
        index = SCTIndex.build(caveman)
        result = sctl_star(
            index, 3, iterations=4, graph=caveman, collect_stats=True
        )
        stats = result.stats["iterations"]
        assert len(stats) == 4
        for entry in stats:
            assert entry.scope_vertices <= caveman.n
            assert entry.scope_edges is not None
            assert entry.scope_cliques is not None
            assert entry.weight_updates <= max(entry.cliques_processed, 1)

    def test_scope_shrinks_over_iterations(self, two_partitions):
        index = SCTIndex.build(two_partitions)
        result = sctl_star(
            index, 3, iterations=6, graph=two_partitions, collect_stats=True
        )
        stats = result.stats["iterations"]
        assert stats[-1].scope_vertices <= stats[0].scope_vertices
