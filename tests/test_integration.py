"""Cross-module integration: the full pipeline on realistic graphs."""

import pytest

from repro import densest_subgraph
from repro.baselines import core_app, kcl
from repro.core import SCTIndex, sctl, sctl_plus, sctl_star, sctl_star_exact, sctl_star_sample
from repro.datasets import load_dataset
from repro.graph import planted_near_cliques_graph, relaxed_caveman_graph


class TestPlantedStructure:
    """Algorithms must find the planted dense block."""

    @pytest.fixture(scope="class")
    def planted(self):
        return planted_near_cliques_graph(
            120, [(12, 0.95), (9, 0.8)], background_p=0.01, seed=99
        )

    def test_exact_finds_the_big_block(self, planted):
        result = sctl_star_exact(planted, 3, sample_size=2000, iterations=8)
        # the dominant block is the 12-vertex near-clique on vertices 0-11
        assert set(result.vertices) <= set(range(12))
        assert result.size >= 9

    def test_all_approximations_find_near_optimal(self, planted):
        exact = sctl_star_exact(planted, 3, sample_size=2000, iterations=8)
        index = SCTIndex.build(planted)
        for result in (
            sctl(index, 3, iterations=12),
            sctl_plus(index, 3, iterations=12),
            sctl_star(index, 3, iterations=12),
            kcl(planted, 3, iterations=12),
        ):
            ratio = result.approximation_ratio(exact.density_fraction)
            assert ratio >= 0.95, result.algorithm

    def test_coreapp_weaker_but_within_guarantee(self, planted):
        exact = sctl_star_exact(planted, 3, sample_size=2000, iterations=8)
        result = core_app(planted, 3)
        ratio = result.approximation_ratio(exact.density_fraction)
        assert ratio >= 1 / 3 - 1e-9


class TestDatasetPipeline:
    """End-to-end runs on registry datasets (the benchmark code paths)."""

    def test_email_dataset_full_pipeline(self):
        g = load_dataset("email")
        index = SCTIndex.build(g)
        k = 6
        approx = sctl_star(index, k, iterations=5)
        sample = sctl_star_sample(index, k, sample_size=2000, iterations=5)
        assert approx.density > 0
        assert sample.density > 0
        assert approx.upper_bound >= approx.density - 1e-9

    def test_exact_on_pokec_dataset(self):
        g = load_dataset("pokec")
        result = sctl_star_exact(g, 5, sample_size=3000, iterations=6)
        assert result.exact
        assert result.density > 0

    def test_partial_index_on_livejournal(self):
        g = load_dataset("livejournal")
        partial = SCTIndex.build(g, threshold=20)
        full_kmax = partial.max_clique_size
        assert full_kmax >= 30
        result = sctl_star_sample(partial, 30, sample_size=2000, iterations=5)
        assert result.density >= 0

    def test_facade_on_dataset(self):
        g = load_dataset("amazon")
        result = densest_subgraph(g, 3, method="sctl*", iterations=5)
        assert result.density > 0


class TestConsistencyAcrossAlgorithms:
    def test_approximations_never_exceed_exact(self, caveman):
        exact = sctl_star_exact(caveman, 3, sample_size=500, iterations=6)
        index = SCTIndex.build(caveman)
        for result in (
            sctl(index, 3, iterations=10),
            sctl_star(index, 3, iterations=10),
            sctl_star_sample(index, 3, sample_size=100, iterations=10),
            kcl(caveman, 3, iterations=10),
            core_app(caveman, 3),
        ):
            assert result.density_fraction <= exact.density_fraction

    def test_index_is_reusable_across_k(self):
        g = relaxed_caveman_graph(6, 8, 0.1, seed=2)
        index = SCTIndex.build(g)
        densities = [sctl_star(index, k, iterations=8).density for k in (3, 4, 5, 6)]
        assert all(d > 0 for d in densities)
