"""Hard (forked) timeout enforcement in the bench harness."""

import os
import signal
import time

import pytest

from repro.bench import TimeoutTracker, timed_hard


class TestTimedHard:
    def test_fast_call_returns_result(self):
        outcome = timed_hard(lambda: 21 * 2, budget=10.0)
        assert outcome.result == 42
        assert not outcome.timed_out

    def test_infinite_loop_is_preempted(self):
        def spin():
            while True:
                pass

        start = time.perf_counter()
        outcome = timed_hard(spin, budget=0.5)
        elapsed = time.perf_counter() - start
        assert outcome.timed_out
        assert outcome.result is None
        assert elapsed < 5.0  # terminated, not waited out

    def test_closure_over_local_state_works(self):
        data = {"x": [1, 2, 3]}
        outcome = timed_hard(lambda: sum(data["x"]), budget=5.0)
        assert outcome.result == 6

    def test_child_exception_propagates(self):
        def boom():
            raise ValueError("inner")

        with pytest.raises(RuntimeError, match="inner"):
            timed_hard(boom, budget=5.0)

    def test_tracker_hard_skips_after_timeout(self):
        tracker = TimeoutTracker(budget=0.3)
        calls = []

        def spin():
            calls.append(1)
            while True:
                pass

        first = tracker.run_hard("d", "alg", spin)
        assert first.timed_out
        second = tracker.run_hard("d", "alg", spin)
        assert second.timed_out
        assert len(calls) == 0  # the fork copies state; parent list untouched

    def test_silent_nonzero_exit_names_the_code(self):
        # a child that os._exit()s mid-call reports nothing on the queue;
        # the harness must surface the exit code, not fake a "time out"
        with pytest.raises(RuntimeError, match="code 3"):
            timed_hard(lambda: os._exit(3), budget=5.0)

    def test_sigkilled_child_names_the_signal_and_oom_hint(self):
        def suicide():
            os.kill(os.getpid(), signal.SIGKILL)

        with pytest.raises(RuntimeError, match="SIGKILL.*OOM"):
            timed_hard(suicide, budget=5.0)

    def test_non_kill_signal_named_without_oom_hint(self):
        def stab():
            os.kill(os.getpid(), signal.SIGTERM)

        with pytest.raises(RuntimeError, match="SIGTERM") as excinfo:
            timed_hard(stab, budget=5.0)
        assert "OOM" not in str(excinfo.value)

    def test_complex_result_crosses_process_boundary(self):
        from repro.core import SCTIndex, sctl_star
        from repro.graph import gnp_graph

        g = gnp_graph(12, 0.5, seed=1)
        index = SCTIndex.build(g)
        outcome = timed_hard(lambda: sctl_star(index, 3, iterations=3), budget=30.0)
        assert outcome.result is not None
        assert outcome.result.density >= 0


class TestTimedWithMemory:
    def test_reports_result_time_and_peak(self):
        from repro.bench import timed_with_memory

        def allocate():
            block = [0] * 300_000  # ~2.4 MB of ints
            return len(block)

        outcome = timed_with_memory(allocate)
        assert outcome.result == 300_000
        assert outcome.seconds >= 0
        assert outcome.peak_mib > 1.0

    def test_tracemalloc_stopped_on_error(self):
        import tracemalloc

        from repro.bench import timed_with_memory

        with pytest.raises(ValueError):
            timed_with_memory(lambda: (_ for _ in ()).throw(ValueError("x")))
        assert not tracemalloc.is_tracing()
