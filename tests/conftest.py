"""Shared fixtures for the test suite."""

import pytest

from repro.graph import Graph, gnp_graph, relaxed_caveman_graph
from repro.graph.generators import disjoint_union, planted_near_cliques_graph


@pytest.fixture
def triangle() -> Graph:
    """K3."""
    return Graph.complete(3)


@pytest.fixture
def k6_plus_k4() -> Graph:
    """A K6 and a K4 joined by a single bridge edge.

    For any ``k >= 3`` the densest subgraph is the K6 itself:
    ``rho_k = C(6, k) / 6``.
    """
    edges = [(i, j) for i in range(6) for j in range(i + 1, 6)]
    edges += [(i, j) for i in range(6, 10) for j in range(i + 1, 10)]
    edges.append((5, 6))  # bridge
    return Graph(10, edges)


@pytest.fixture
def small_random() -> Graph:
    """A fixed 12-vertex random graph, dense enough to have 5-cliques."""
    return gnp_graph(12, 0.55, seed=42)


@pytest.fixture
def caveman() -> Graph:
    """8 caves of 6 vertices with light rewiring — community structure."""
    return relaxed_caveman_graph(8, 6, 0.1, seed=7)


@pytest.fixture
def two_partitions() -> Graph:
    """Two dense blocks with no connecting k-cliques (only a path bridge).

    Gives a non-trivial k-clique-isolating partition for k >= 3.
    """
    dense = planted_near_cliques_graph(
        24, [(10, 0.95), (10, 0.9)], background_p=0.0, seed=5
    )
    bridge = Graph(2, [(0, 1)])
    merged = disjoint_union([dense, bridge])
    # chain: block A .. v24 .. v25 .. block B (no triangles through bridge)
    edges = list(merged.edges()) + [(0, 24), (25, 12)]
    return Graph(merged.n, edges)
