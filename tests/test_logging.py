"""Logging integration: the algorithms narrate at DEBUG level."""

import logging

from repro.core import SCTIndex, sctl_star, sctl_star_exact
from repro.graph import gnp_graph


class TestDebugLogging:
    def test_sctl_star_logs_iterations(self, caplog):
        g = gnp_graph(15, 0.45, seed=2)
        index = SCTIndex.build(g)
        with caplog.at_level(logging.DEBUG, logger="repro.core.sctl_star"):
            sctl_star(index, 3, iterations=3)
        iteration_lines = [
            r for r in caplog.records if "iteration" in r.getMessage()
        ]
        assert len(iteration_lines) == 3

    def test_exact_logs_stages(self, caplog):
        g = gnp_graph(15, 0.45, seed=2)
        with caplog.at_level(logging.DEBUG, logger="repro.core.exact"):
            sctl_star_exact(g, 3, sample_size=50, iterations=3)
        messages = [r.getMessage() for r in caplog.records]
        assert any("warm start" in m for m in messages)
        assert any("scope reduced" in m for m in messages)
        assert any("flow round" in m for m in messages)

    def test_silent_by_default(self, capsys):
        g = gnp_graph(12, 0.45, seed=3)
        index = SCTIndex.build(g)
        sctl_star(index, 3, iterations=2)
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""

    def test_metrics_layer_silent_too(self, capsys):
        # the observability layer honours the same guarantee: a recorder
        # without a sink aggregates in memory and prints nothing
        from repro.obs import MetricsRecorder

        g = gnp_graph(12, 0.45, seed=3)
        recorder = MetricsRecorder()
        index = SCTIndex.build(g, recorder=recorder)
        sctl_star(index, 3, iterations=2, recorder=recorder)
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""
        assert recorder.counters  # it did record, just silently
