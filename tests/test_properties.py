"""Property-based tests (hypothesis) for the core invariants.

Random graphs are generated from edge subsets of a bounded vertex range so
that the naive oracles stay fast; every property here is a structural
invariant of the paper's machinery, not an example.
"""

from fractions import Fraction
from math import comb

import pytest
from hypothesis import given, settings, strategies as st

from repro.cliques import (
    count_k_cliques,
    count_k_cliques_naive,
    densest_subgraph_bruteforce,
    iter_k_cliques_naive,
    per_vertex_counts_naive,
)
from repro.core import (
    SCTIndex,
    batch_update,
    kp_computation,
    sctl,
    sctl_star,
    sctl_star_exact,
)
from repro.graph import Graph


@st.composite
def graphs(draw, max_n=10):
    """A random simple graph with up to ``max_n`` vertices."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=len(possible)))
    return Graph(n, edges)


@settings(max_examples=40, deadline=None)
@given(graphs(), st.integers(min_value=1, max_value=5))
def test_sct_count_matches_naive(g, k):
    index = SCTIndex.build(g)
    assert index.count_k_cliques(k) == count_k_cliques_naive(g, k)


@settings(max_examples=30, deadline=None)
@given(graphs(), st.integers(min_value=2, max_value=4))
def test_sct_per_vertex_matches_naive(g, k):
    index = SCTIndex.build(g)
    assert index.per_vertex_counts(k) == per_vertex_counts_naive(g, k)


@settings(max_examples=30, deadline=None)
@given(graphs(), st.integers(min_value=1, max_value=4))
def test_kclist_count_matches_naive(g, k):
    assert count_k_cliques(g, k) == count_k_cliques_naive(g, k)


@settings(max_examples=25, deadline=None)
@given(graphs(max_n=9), st.integers(min_value=3, max_value=4))
def test_exact_solver_is_optimal(g, k):
    result = sctl_star_exact(g, k, sample_size=50, iterations=3)
    _, optimal = densest_subgraph_bruteforce(g, k)
    assert result.density == pytest.approx(optimal)


@settings(max_examples=25, deadline=None)
@given(graphs(max_n=9), st.integers(min_value=3, max_value=4))
def test_approx_density_below_upper_bound_and_optimum(g, k):
    index = SCTIndex.build(g)
    if index.max_clique_size < k:
        return
    _, optimal = densest_subgraph_bruteforce(g, k)
    result = sctl_star(index, k, iterations=10)
    assert result.density <= optimal + 1e-9
    assert result.upper_bound >= optimal - 1e-9
    assert result.upper_bound >= result.density - 1e-9


@settings(max_examples=30, deadline=None)
@given(graphs(), st.integers(min_value=3, max_value=4))
def test_partition_isolates_cliques(g, k):
    index = SCTIndex.build(g)
    partition = kp_computation(index, k)
    for clique in iter_k_cliques_naive(g, k):
        assert len({partition.partition_of[v] for v in clique}) == 1


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=6),
    st.lists(st.integers(min_value=0, max_value=8), min_size=9, max_size=9),
    st.integers(min_value=1, max_value=9),
)
def test_batch_update_conserves_mass(n_holds, n_pivots, raw_weights, k):
    holds = list(range(n_holds))
    pivots = list(range(n_holds, n_holds + n_pivots))
    weights = raw_weights[: n_holds + n_pivots]
    before = sum(weights)
    batch_update(weights, holds, pivots, k)
    expected = comb(n_pivots, k - n_holds) if n_holds <= k <= n_holds + n_pivots else 0
    assert sum(weights) - before == expected


@settings(max_examples=20, deadline=None)
@given(graphs(max_n=9))
def test_sctl_weight_mass_is_iterations_times_cliques(g):
    index = SCTIndex.build(g)
    k = 3
    total = count_k_cliques_naive(g, k)
    if total == 0:
        return
    result = sctl(index, k, iterations=4)
    assert sum(result.stats["weights"]) == 4 * total


@settings(max_examples=25, deadline=None)
@given(graphs(), st.integers(min_value=1, max_value=4))
def test_index_subset_count_monotone(g, k):
    """Counting in a subset can never exceed the global count."""
    index = SCTIndex.build(g)
    half = list(range(0, g.n, 2))
    assert index.count_in_subset(k, half) <= index.count_k_cliques(k)


@settings(max_examples=25, deadline=None)
@given(graphs(max_n=9), st.integers(min_value=3, max_value=4))
def test_density_result_is_internally_consistent(g, k):
    index = SCTIndex.build(g)
    result = sctl_star(index, k, iterations=5)
    if result.vertices:
        sub, _ = g.induced_subgraph(result.vertices)
        assert count_k_cliques_naive(sub, k) == result.clique_count
        assert result.density_fraction == Fraction(result.clique_count, result.size)
