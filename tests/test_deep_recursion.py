"""Deep-clique regression suite: no RecursionError anywhere in the stack.

A planted clique larger than CPython's default recursion limit (~1000
frames) used to kill ``SCTIndex.build``, path traversal, Bron-Kerbosch and
``batch_update`` — exactly the "scaling up" regime the paper targets.  All
of those now run on explicit stacks; these tests pin that down, and a
dedicated CI job keeps them from silently regressing.

The graph is module-scoped: building it is the expensive part, every test
shares one instance.
"""

import sys
from math import comb

import pytest

from repro.core import SCTIndex, batch_update, sctl_star
from repro.cliques.maximal import max_clique_size
from repro.graph.generators import planted_clique_graph

CLIQUE = 1150  # comfortably above the default ~1000-frame recursion limit
N = 1200


@pytest.fixture(scope="module")
def deep_graph():
    assert CLIQUE > sys.getrecursionlimit()
    return planted_clique_graph(N, CLIQUE, 0.001, seed=7)


@pytest.fixture(scope="module")
def deep_index(deep_graph):
    return SCTIndex.build(deep_graph)


class TestDeepCliqueTree:
    def test_build_reaches_full_depth(self, deep_index):
        assert deep_index.max_clique_size == CLIQUE

    def test_iter_paths_streams_deep_paths(self, deep_index):
        k = CLIQUE - 5
        longest = 0
        for path in deep_index.iter_paths(k):
            assert len(path.holds) <= k
            longest = max(longest, len(path))
        assert longest >= CLIQUE

    def test_count_k_cliques_deep(self, deep_index):
        k = CLIQUE - 2
        # every k-clique of the planted clique is a k-subset of it; the
        # sparse background cannot reach this k
        assert deep_index.count_k_cliques(k) == comb(CLIQUE, k)

    def test_a_maximum_clique_is_the_planted_one(self, deep_index):
        clique = deep_index.a_maximum_clique()
        assert len(clique) == CLIQUE
        assert clique == list(range(CLIQUE))

    def test_traversal_node_count_deep(self, deep_index):
        pruned = deep_index.traversal_node_count(CLIQUE)
        full = deep_index.traversal_node_count(None)
        assert 0 < pruned < full

    def test_sctl_star_streaming_on_deep_clique(self, deep_index):
        k = CLIQUE - 5
        result = sctl_star(deep_index, k, iterations=2)
        assert result.vertices == list(range(CLIQUE))
        assert result.clique_count == comb(CLIQUE, k)

    def test_bron_kerbosch_deep(self, deep_graph):
        assert max_clique_size(deep_graph) == CLIQUE


class TestDeepBatchUpdate:
    def test_long_path_distributes_without_recursion(self):
        n_pivots = 3000
        weights = [0] * (n_pivots + 1)
        k = 2
        total = comb(n_pivots, k - 1)
        # staircase weights force a pivot promotion cascade: every pivot in
        # turn becomes the minimum, is capped by the next gap, and splits
        weights[1:] = list(range(n_pivots))
        batch_update(weights, [0], list(range(1, n_pivots + 1)), k)
        assert sum(weights) == sum(range(n_pivots)) + total


class TestNoRecursionLimitHacks:
    def test_src_never_touches_setrecursionlimit(self):
        import pathlib

        import repro

        src_root = pathlib.Path(repro.__file__).parent
        offenders = [
            str(path)
            for path in src_root.rglob("*.py")
            if "setrecursionlimit" in path.read_text(encoding="utf-8")
        ]
        assert offenders == []
