#!/usr/bin/env python
"""End-to-end smoke test for the ``repro.service`` query daemon.

Starts ``python -m repro serve`` as a subprocess against the golden
``email`` graph, then — through the retrying
:class:`repro.service.client.ServiceClient` — asserts the properties
the service exists for:

1. ``/readyz`` reports ready, and build / query / profile all answer
   with validating versioned payloads (``repro/result-v1`` inside a
   ``repro/service-v1`` envelope);
2. a warm (index-cached) query costs < 10% of the cold build;
3. 8 concurrent identical queries trigger exactly ONE underlying
   computation (single-flight coalescing + result cache);
4. SIGTERM drains gracefully and the daemon exits 0.

Run from the repo root::

    PYTHONPATH=src python scripts/service_smoke.py
"""

import os
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.obs.validate import validate_result  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

DATASET = "email"
K = 7


def rpc(client, op, obj):
    envelope = client._rpc(op, dict(obj))
    errors = validate_result(envelope)
    if errors:
        raise SystemExit(f"invalid {op} envelope: {errors}")
    return envelope


def check(condition, message):
    if not condition:
        raise SystemExit(f"FAIL: {message}")
    print(f"ok: {message}")


def main():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
    )
    try:
        announce = proc.stdout.readline()
        check("listening on http://" in announce,
              f"daemon announced itself: {announce.strip()}")
        port = int(announce.rsplit(":", 1)[1])
        client = ServiceClient(f"http://127.0.0.1:{port}", timeout_s=300)

        status, payload = client.readyz()
        check(status == 200 and payload["status"] == "ok",
              "daemon is ready (/readyz 200)")

        # 1. cold build, then query and profile on the cached index
        t0 = time.perf_counter()
        build = rpc(client, "build", {"dataset": DATASET})
        cold_build_s = time.perf_counter() - t0
        check(build["code"] == 0 and not build["index"]["cached"],
              f"cold build ok in {cold_build_s:.3f}s "
              f"(k_max={build['index']['max_clique_size']})")

        query_obj = {"dataset": DATASET, "k": K, "method": "sctl*"}
        first = rpc(client, "query", query_obj)
        check(first["code"] == 0
              and first["result"]["schema"] == "repro/result-v1",
              f"query answered result-v1 (density={first['result']['density']:.2f})")

        profile = rpc(client, "profile", {"dataset": DATASET})
        check(profile["code"] == 0
              and profile["profile"]["schema"] == "repro/profile-v1"
              and profile["profile"]["rows"],
              f"profile answered {len(profile['profile']['rows'])} rows")

        # 2. warm query must be <10% of the cold build
        t0 = time.perf_counter()
        warm = rpc(client, "query", query_obj)
        warm_query_s = time.perf_counter() - t0
        check(warm["cached"], "second identical query served from result cache")
        check(warm_query_s < 0.10 * cold_build_s,
              f"warm query {warm_query_s * 1000:.1f}ms < 10% of "
              f"cold build {cold_build_s:.3f}s")

        # 3. 8 concurrent identical queries -> exactly one computation
        fresh = {"dataset": DATASET, "k": K + 1, "method": "sctl*"}
        with ThreadPoolExecutor(8) as pool:
            futures = [
                pool.submit(rpc, client, "query", fresh) for _ in range(8)
            ]
            envelopes = [f.result() for f in futures]
        check(all(e["code"] == 0 for e in envelopes),
              "all 8 concurrent queries answered")
        shared = sum(1 for e in envelopes if e["coalesced"] or e["cached"])
        check(shared == 7, f"7 of 8 coalesced or cache-served (got {shared})")
        stats = rpc(client, "stats", {})
        computed = stats["stats"]["counters"]["service/computations"]
        check(computed == 2,  # k=7 cold query + one coalesced k=8 flight
              f"exactly one computation per distinct query (total {computed})")

        # 4. graceful drain on SIGTERM
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=120)
        check(proc.returncode == 0, "daemon exited 0 on SIGTERM")
        check("repro service drained" in out, "daemon reported a clean drain")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    print("service smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
