#!/usr/bin/env python
"""Fleet load bench: 1-vs-N worker scaling, plus the CI chaos smoke.

Two modes share one load generator (client threads driving mixed
cold/warm traffic through a real router + subprocess worker fleet):

* **Full** (default): run the same load against a 1-worker fleet and a
  4-worker fleet, digest cold/warm latency (p50/p99) from the router's
  own ``service/latency/query/*`` histograms, compute the cold
  throughput speedup and the warm p99 ratio, and append one
  schema-validated record with a ``fleet`` bench to
  ``BENCH_trajectory.json`` (the core benches ride along so the record
  satisfies the trajectory schema).
* **--quick** (the CI ``fleet-smoke`` job): router + 2 workers, mixed
  cold/warm load, one worker SIGKILLed mid-run.  Pass criteria: every
  envelope validates against its schema, zero requests hang (every
  issued request completes), and the fleet drains cleanly.  No
  trajectory write.

Run from the repo root::

    PYTHONPATH=src python scripts/bench_fleet.py --quick
"""

import argparse
import json
import os
import platform
import sys
import threading
import time
from datetime import datetime, timezone
from queue import Empty, Queue

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_trajectory as core  # noqa: E402

from repro.obs.validate import (  # noqa: E402
    TRAJECTORY_SCHEMA,
    validate_result,
    validate_trajectory,
)
from repro.service import (  # noqa: E402
    FleetManager,
    RouterConfig,
    ServiceClient,
    make_router,
)


class Fleet:
    """A subprocess worker fleet behind an in-process router."""

    def __init__(self, workers_n):
        self.manager = FleetManager(workers_n)
        workers = self.manager.start()
        self.server, self.router = make_router(
            RouterConfig(port=0), workers, manager=self.manager
        )
        threading.Thread(
            target=self.server.serve_forever, daemon=True
        ).start()
        self.endpoint = f"http://127.0.0.1:{self.server.server_address[1]}"

    def close(self):
        self.server.shutdown()
        self.server.server_close()
        self.manager.terminate()


def drive(endpoint, requests, threads, timeout_s=120.0, max_retries=3):
    """Issue ``requests`` from ``threads`` client threads; collect all.

    Returns ``(outcomes, hung)`` where ``outcomes`` is a list of
    ``(request, envelope-or-exception)`` pairs and ``hung`` counts
    issued requests that never completed within ``timeout_s`` — the
    number the chaos smoke pins at zero.
    """
    todo = Queue()
    for obj in requests:
        todo.put(obj)
    outcomes = []
    lock = threading.Lock()

    def worker():
        with ServiceClient(
            endpoint, max_retries=max_retries, timeout_s=60
        ) as client:
            while True:
                try:
                    obj = todo.get_nowait()
                except Empty:
                    return
                try:
                    out = client.query(**obj)
                except Exception as exc:  # noqa: BLE001 — recorded, not lost
                    out = exc
                with lock:
                    outcomes.append((obj, out))

    pool = [
        threading.Thread(target=worker, daemon=True) for _ in range(threads)
    ]
    for t in pool:
        t.start()
    deadline = time.monotonic() + timeout_s
    for t in pool:
        t.join(timeout=max(0.0, deadline - time.monotonic()))
    hung = len(requests) - len(outcomes)
    return outcomes, hung


def cold_requests(count, dataset, k):
    # distinct build_options fingerprints -> distinct canonical index
    # keys -> every request is a fresh build on whichever worker owns it
    return [
        {"dataset": dataset, "k": k, "build_options": {"arm": i}}
        for i in range(count)
    ]


def latency_digests(fleet):
    """Cold/warm p50/p99 from the router's own latency histograms."""
    stats = fleet.router.handle_request({"op": "stats"})
    histograms = stats["stats"]["histograms"]
    out = {}
    for temperature in ("cold", "warm"):
        digest = histograms.get(f"service/latency/query/{temperature}")
        if digest is None:
            raise SystemExit(
                f"no {temperature} latency histogram on the router"
            )
        out[temperature] = {
            "count": digest["count"],
            "p50_s": digest["p50"],
            "p99_s": digest["p99"],
        }
    return out


def run_arm(workers_n, cold_count, warm_count, threads, dataset, k):
    """One bench arm: cold fan-out phase, then a warm steady phase."""
    fleet = Fleet(workers_n)
    try:
        cold = cold_requests(cold_count, dataset, k)
        t0 = time.perf_counter()
        outcomes, hung = drive(fleet.endpoint, cold, threads)
        cold_elapsed = time.perf_counter() - t0
        check_outcomes(outcomes, hung)

        warm = [{"dataset": dataset, "k": k} for _ in range(warm_count)]
        # prime the warm key once so every measured request is a hit
        prime, hung = drive(fleet.endpoint, warm[:1], 1)
        check_outcomes(prime, hung)
        outcomes, hung = drive(fleet.endpoint, warm, threads)
        check_outcomes(outcomes, hung)

        digests = latency_digests(fleet)
        return {
            "workers": workers_n,
            "cold": digests["cold"],
            "warm": digests["warm"],
            "cold_throughput_rps": (
                cold_count / cold_elapsed if cold_elapsed > 0 else 0.0
            ),
        }
    finally:
        fleet.close()


def check_outcomes(outcomes, hung):
    if hung:
        raise SystemExit(f"{hung} requests hung (never completed)")
    for obj, out in outcomes:
        if isinstance(out, Exception):
            raise SystemExit(f"request {obj} failed: {out!r}")
        errors = validate_result(out)
        if errors:
            raise SystemExit(
                f"invalid envelope for {obj}:\n  " + "\n  ".join(errors)
            )
        if not out.ok:
            raise SystemExit(
                f"request {obj} errored (code {out.code}): {out.error}"
            )


def run_quick(dataset, k, threads):
    """CI fleet-smoke: 2 workers, mixed load, SIGKILL one mid-run."""
    fleet = Fleet(2)
    try:
        # mixed cold/warm: 4 distinct keys interleaved with repeats
        mixed = []
        for i in range(16):
            mixed.append(
                {"dataset": dataset, "k": k, "build_options": {"arm": i % 4}}
            )

        def chaos():
            # let some requests land, then SIGKILL a worker mid-run
            time.sleep(0.5)
            killed = fleet.manager.kill("w1")
            print(f"chaos: SIGKILL w1 -> {killed}", flush=True)

        chaos_thread = threading.Thread(target=chaos, daemon=True)
        chaos_thread.start()
        outcomes, hung = drive(fleet.endpoint, mixed, threads)
        chaos_thread.join(timeout=10)
        check_outcomes(outcomes, hung)
        # a second round after the kill: every key w1 owned must fail
        # over to the survivor with no lost requests
        outcomes2, hung = drive(fleet.endpoint, mixed, threads)
        check_outcomes(outcomes2, hung)
        results = [out for _, out in outcomes + outcomes2]
        served = sorted({out.served_by for out in results})
        versions = sorted({out.get("schema") for out in results})
        print(
            f"fleet-smoke: {len(results)} requests ok, 0 hung, "
            f"served_by={served}, schemas={versions}",
            flush=True,
        )
        # the dead worker is out of the ring; the survivor holds it up
        if "w1" in fleet.router.ring:
            raise SystemExit("dead worker w1 still in the hash ring")
        stats = fleet.router.handle_request({"op": "stats"})
        if validate_result(stats):
            raise SystemExit("router stats envelope failed validation")
    finally:
        fleet.close()
    print("fleet-smoke: PASS", flush=True)
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=os.path.join(REPO_ROOT, "BENCH_trajectory.json"),
    )
    parser.add_argument("--dataset", default="email")
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument(
        "--cold-keys", type=int, default=8,
        help="distinct index keys per arm (default 8)",
    )
    parser.add_argument(
        "--warm-queries", type=int, default=40,
        help="warm (result-cached) queries per arm (default 40)",
    )
    parser.add_argument(
        "--threads", type=int, default=8,
        help="client load-generator threads (default 8)",
    )
    parser.add_argument(
        "--scaled-workers", type=int, default=4,
        help="fleet size for the scaled arm (default 4)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI chaos smoke (2 workers, SIGKILL one mid-run); no "
        "trajectory write",
    )
    args = parser.parse_args(argv)

    if args.quick:
        return run_quick(args.dataset, args.k, min(args.threads, 4))

    print(
        f"fleet bench: dataset={args.dataset} k={args.k} "
        f"cold_keys={args.cold_keys} warm={args.warm_queries}"
    )
    single = run_arm(
        1, args.cold_keys, args.warm_queries, args.threads,
        args.dataset, args.k,
    )
    scaled = run_arm(
        args.scaled_workers, args.cold_keys, args.warm_queries,
        args.threads, args.dataset, args.k,
    )
    fleet_bench = {
        "single": single,
        "scaled": scaled,
        "cold_speedup": (
            scaled["cold_throughput_rps"] / single["cold_throughput_rps"]
            if single["cold_throughput_rps"] > 0 else 0.0
        ),
        "warm_p99_ratio": (
            scaled["warm"]["p99_s"] / single["warm"]["p99_s"]
            if single["warm"]["p99_s"] > 0 else 0.0
        ),
    }
    for arm_name, arm in (("single", single), ("scaled", scaled)):
        print(
            f"{arm_name}: workers={arm['workers']} "
            f"cold p50={arm['cold']['p50_s']:.4g}s "
            f"p99={arm['cold']['p99_s']:.4g}s "
            f"warm p50={arm['warm']['p50_s']:.4g}s "
            f"p99={arm['warm']['p99_s']:.4g}s "
            f"cold_rps={arm['cold_throughput_rps']:.2f}"
        )
    print(
        f"cold_speedup={fleet_bench['cold_speedup']:.2f}x "
        f"warm_p99_ratio={fleet_bench['warm_p99_ratio']:.2f}"
    )
    cores = os.cpu_count() or 1
    if cores < args.scaled_workers:
        print(
            f"note: only {cores} CPU core(s) available for "
            f"{args.scaled_workers} workers — cold builds are CPU-bound, "
            "so the speedup degenerates toward 1x on this host; run on "
            f">= {args.scaled_workers} cores to see the fleet scale"
        )

    # the core benches ride along so the record satisfies the schema
    graph = core.load_dataset(args.dataset)
    index, index_build = core.bench_index_build(graph)
    path_throughput = core.bench_path_throughput(index, args.k)
    service_query = core.bench_service_query(args.dataset, args.k, 10, 5)

    record = {
        "schema": TRAJECTORY_SCHEMA,
        "recorded_at": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "git": core._git_commit(),
        "dataset": args.dataset,
        "k": args.k,
        "benches": {
            "index_build": index_build,
            "path_throughput": path_throughput,
            "service_query": service_query,
            "fleet": fleet_bench,
        },
    }
    trajectory = []
    if os.path.exists(args.output):
        with open(args.output, encoding="utf-8") as fh:
            trajectory = json.load(fh)
        if not isinstance(trajectory, list):
            raise SystemExit(f"{args.output} is not a JSON array")
    trajectory.append(record)
    errors = validate_trajectory(trajectory)
    if errors:
        raise SystemExit(
            "refusing to write an invalid trajectory:\n  "
            + "\n  ".join(errors)
        )
    tmp = args.output + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(trajectory, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, args.output)
    print(f"appended record {len(trajectory)} to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
