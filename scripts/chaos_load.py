#!/usr/bin/env python
"""Chaos-under-load suite for the ``repro.service`` daemon.

Starts ``python -m repro serve`` with tight admission limits and a small
worker pool, then attacks it three ways while asserting the resilience
contract from docs/robustness.md:

1. **Overload**: a thundering herd of mixed cold builds and warm queries
   against ``--max-concurrent 2 --max-queue 2``.  Every response —
   including 429s and 503s — must be a well-formed ``repro/service-v1``
   envelope that passes ``repro.obs.validate``, every rejection must
   carry ``retry_after_s``, and ZERO requests may hang past the deadline.
2. **Worker crash**: the ``REPRO_FAULT_WORKER_KILL`` marker SIGKILLs a
   pool worker mid-sweep; the query must still answer, its result must
   be byte-identical to an uncrashed in-process serial run, and the
   crash must be visible in ``parallel/worker_crashes``.
3. **Disk corruption**: the persisted ``.sct2`` index is overwritten
   with garbage; a cold restart must quarantine the corrupt file,
   rebuild, and answer code 0.

Afterwards the daemon drains on SIGTERM and the suite asserts no
``/dev/shm`` segment leaked.  Artifacts (access log, final /metrics
dump) land in ``--artifact-dir`` for CI upload.

Run from the repo root::

    PYTHONPATH=src python scripts/chaos_load.py
"""

import argparse
import glob
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor, as_completed

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.obs.validate import validate_result  # noqa: E402
from repro.parallel import engine as engine_mod  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

DATASET = "email"
CRASH_K = 6
HERD = 24
REQUEST_DEADLINE_S = 300.0


def check(condition, message):
    if not condition:
        raise SystemExit(f"FAIL: {message}")
    print(f"ok: {message}")


def shm_segments():
    return set(glob.glob("/dev/shm/psm_*")) | set(glob.glob("/dev/shm/sct*"))


def raw_post(port, path, obj, timeout=REQUEST_DEADLINE_S):
    """One un-retried exchange; 4xx/5xx bodies are answers, not errors."""
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(obj).encode(),
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        with exc:
            return exc.code, dict(exc.headers), exc.read()


def validated_envelope(status, headers, body, origin):
    lines = body.decode().splitlines()
    check(lines, f"{origin}: response body is non-empty")
    envelope = json.loads(lines[0])
    errors = validate_result(envelope)
    check(not errors, f"{origin}: envelope validates ({errors or 'clean'})")
    if status == 429:
        check(envelope.get("rejected") is True,
              f"{origin}: 429 body says rejected")
        check("Retry-After" in headers,
              f"{origin}: 429 carries Retry-After header")
    return envelope


def overload_phase(port):
    """Thundering herd against max-concurrent 2 / max-queue 2."""
    print(f"\n--- phase 1: overload ({HERD} concurrent requests) ---")
    jobs = []
    for i in range(HERD):
        if i % 3 == 0:  # cold-ish: distinct k forces a fresh computation
            jobs.append({"dataset": DATASET, "k": 4 + (i % 5),
                         "method": "sctl*"})
        else:  # warm herd: identical query, coalesces or cache-hits
            jobs.append({"dataset": DATASET, "k": 5, "method": "sctl*"})

    t0 = time.perf_counter()
    outcomes = []
    with ThreadPoolExecutor(HERD) as pool:
        futures = {
            pool.submit(raw_post, port, "/v1/query", job): n
            for n, job in enumerate(jobs)
        }
        pending = set(futures)
        for future in as_completed(futures, timeout=REQUEST_DEADLINE_S):
            pending.discard(future)
            outcomes.append((futures[future], future.result()))
    herd_s = time.perf_counter() - t0
    check(not pending, "zero hung requests (all herd futures completed)")
    check(len(outcomes) == HERD,
          f"all {HERD} herd requests answered in {herd_s:.1f}s")

    answered = rejected = 0
    for n, (status, headers, body) in sorted(outcomes):
        envelope = validated_envelope(status, headers, body, f"herd[{n}]")
        if status == 429 or envelope.get("rejected"):
            rejected += 1
        elif envelope["code"] == 0:
            answered += 1
    check(answered + rejected >= HERD * 3 // 4,
          f"herd outcomes decisive: {answered} ok, {rejected} rejected")
    check(answered >= 1, "at least one herd query computed")
    print(f"herd: {answered} answered, {rejected} rejected, "
          f"{HERD - answered - rejected} other")

    # a polite retrying client gets through AFTER the herd: the gate frees
    client = ServiceClient(f"http://127.0.0.1:{port}",
                           timeout_s=REQUEST_DEADLINE_S, max_retries=8)
    envelope = client.query(dataset=DATASET, k=5, method="sctl*")
    check(envelope["code"] == 0, "retrying client admitted after the herd")
    return rejected


def crash_phase(port, marker_path):
    """SIGKILL a pool worker mid-query; demand byte-parity with serial."""
    print("\n--- phase 2: worker crash ---")
    from repro import densest_subgraph
    from repro.datasets.registry import load_dataset

    serial = densest_subgraph(
        load_dataset(DATASET), CRASH_K, method="sctl*", iterations=10,
    ).to_dict()
    serial.pop("timings")

    with open(marker_path, "w") as fh:  # arm: one SIGKILL
        fh.write("1")
    status, headers, body = raw_post(
        port, "/v1/query",
        {"dataset": DATASET, "k": CRASH_K, "method": "sctl*",
         "iterations": 10},
    )
    envelope = validated_envelope(status, headers, body, "crash-query")
    check(envelope["code"] == 0, "query with a SIGKILLed worker answered 0")
    crashed = envelope["result"]
    crashed.pop("timings")
    check(json.dumps(crashed, sort_keys=True)
          == json.dumps(serial, sort_keys=True),
          "crashed-worker result byte-identical to uncrashed serial run")

    stats = json.loads(
        raw_post(port, "/v1/stats", {})[2].decode().splitlines()[0]
    )
    counters = stats["stats"]["counters"]
    check(counters.get("parallel/worker_crashes", 0) >= 1,
          f"crash visible in metrics "
          f"(parallel/worker_crashes={counters.get('parallel/worker_crashes')})")
    if os.path.exists(marker_path):
        os.unlink(marker_path)


def update_phase(port):
    """Toggle an edge via /v1/update while readers hammer the same graph.

    The coherence contract: every in-flight query sees either the
    pre-update or the post-update graph — a torn index would surface as
    a density outside the two-value set, a malformed envelope, or a
    traceback.  Each round deletes then re-inserts the same edge, so the
    final graph equals the baseline and the closing parity check is exact.
    """
    print("\n--- phase 4: updates during queries ---")
    from repro import densest_subgraph
    from repro.core import apply_edge_updates
    from repro.datasets.registry import load_dataset

    graph = load_dataset(DATASET)
    status, headers, body = raw_post(
        port, "/v1/query", {"dataset": DATASET, "k": 5, "method": "sctl*"}
    )
    baseline = validated_envelope(status, headers, body, "update-baseline")
    check(baseline["code"] == 0, "baseline query before the update storm")
    dense = baseline["result"]["vertices"]
    members = set(dense)
    edge = next(
        (u, v) for u in dense for v in graph.neighbors(u) if v in members
    )
    deleted_graph, _, _ = apply_edge_updates(graph, deletes=[edge])
    allowed = {
        baseline["result"]["density"],
        densest_subgraph(deleted_graph, 5, method="sctl*").density,
    }

    client = ServiceClient(f"http://127.0.0.1:{port}",
                           timeout_s=REQUEST_DEADLINE_S, max_retries=8)
    stop = {"flag": False}
    reader_failures = []

    def reader(n):
        seen = 0
        while not stop["flag"]:
            status, headers, body = raw_post(
                port, "/v1/query",
                {"dataset": DATASET, "k": 5, "method": "sctl*"},
            )
            envelope = validated_envelope(
                status, headers, body, f"reader[{n}]"
            )
            if envelope.get("rejected"):
                time.sleep(0.05)  # admission pushed back; not a failure
                continue
            if envelope["code"] != 0:
                reader_failures.append(envelope)
                return 0
            if envelope["result"]["density"] not in allowed:
                reader_failures.append(envelope)  # torn index
                return 0
            seen += 1
        return seen

    rounds = 4
    with ThreadPoolExecutor(4) as pool:
        readers = [pool.submit(reader, n) for n in range(4)]
        applied = 0
        try:
            for _ in range(rounds):
                for inserts, deletes in (((), (edge,)), ((edge,), ())):
                    outcome = client.update(
                        inserts=inserts, deletes=deletes, dataset=DATASET
                    )
                    check(outcome.ok and outcome.applied,
                          f"update applied (version {outcome.graph_version})")
                    applied += 1
        finally:
            stop["flag"] = True
        served = sum(f.result() for f in readers)
    check(not reader_failures,
          f"no torn/malformed reads during updates ({reader_failures[:1]})")
    check(served >= 1, f"readers served {served} consistent answers")

    stats = json.loads(
        raw_post(port, "/v1/stats", {})[2].decode().splitlines()[0]
    )["stats"]
    check(stats["graph_versions"].get(f"dataset/{DATASET}") == applied,
          f"graph_version advanced monotonically to {applied}")
    counters = stats["counters"]
    check(counters.get("service/index_updates", 0) == applied,
          "every applied update counted in service/index_updates")

    status, headers, body = raw_post(
        port, "/v1/query", {"dataset": DATASET, "k": 5, "method": "sctl*"}
    )
    final = validated_envelope(status, headers, body, "update-final")
    check(final["code"] == 0
          and final["result"]["density"] == baseline["result"]["density"],
          "final query matches the baseline (edge toggles net out)")


def corruption_phase(index_dir, artifact_dir):
    """Corrupt the persisted index; a cold restart must quarantine it."""
    print("\n--- phase 3: disk corruption ---")
    disk_files = [
        name for name in os.listdir(index_dir) if name.endswith(".sct2")
    ]
    check(disk_files, f"server persisted indices under {index_dir}")
    victim = os.path.join(index_dir, disk_files[0])
    with open(victim, "wb") as fh:
        fh.write(b"\xde\xad\xbe\xef not an index " * 64)

    proc, port = start_server(index_dir, artifact_dir, suffix="-corruption")
    try:
        status, headers, body = raw_post(
            port, "/v1/query", {"dataset": DATASET, "k": 5, "method": "sctl*"}
        )
        envelope = validated_envelope(status, headers, body, "post-corruption")
        check(envelope["code"] == 0,
              "query after corruption answered 0 (quarantine + rebuild)")
        quarantine = os.path.join(index_dir, "quarantine")
        check(os.path.isdir(quarantine) and os.listdir(quarantine),
              f"corrupt file quarantined: {os.listdir(quarantine)}")
    finally:
        stop_server(proc, "corruption server")


def start_server(index_dir, artifact_dir, suffix=""):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env[engine_mod._FAULT_ENV] = env.get(
        engine_mod._FAULT_ENV, os.path.join(index_dir, "kill.marker")
    )
    access_log = os.path.join(artifact_dir, f"access{suffix}.jsonl")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--max-concurrent", "2", "--max-queue", "2",
         "--workers", "2",
         "--index-dir", index_dir,
         "--access-log", access_log],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
    )
    announce = proc.stdout.readline()
    if "listening on http://" not in announce:
        proc.kill()
        _, err = proc.communicate()
        raise SystemExit(
            f"FAIL: daemon never announced itself "
            f"(stdout={announce.strip()!r}, stderr tail={err[-2000:]!r})"
        )
    print(f"ok: daemon announced itself: {announce.strip()}")
    return proc, int(announce.rsplit(":", 1)[1])


def stop_server(proc, label):
    proc.send_signal(signal.SIGTERM)
    try:
        out, _ = proc.communicate(timeout=120)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.communicate()
        raise SystemExit(f"FAIL: {label} did not drain within 120s")
    check(proc.returncode == 0, f"{label} exited 0 on SIGTERM")
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifact-dir", default=os.path.join(REPO_ROOT, "chaos-artifacts"),
        help="where the access log and final /metrics dump land",
    )
    args = parser.parse_args()
    os.makedirs(args.artifact_dir, exist_ok=True)

    shm_before = shm_segments()
    index_dir = tempfile.mkdtemp(prefix="chaos-indices-")
    marker_path = os.path.join(index_dir, "kill.marker")
    os.environ[engine_mod._FAULT_ENV] = marker_path

    try:
        proc, port = start_server(index_dir, args.artifact_dir)
        try:
            rejected = overload_phase(port)
            crash_phase(port, marker_path)
            update_phase(port)

            # snapshot /metrics and /readyz before draining
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=30
            ) as resp:
                metrics_text = resp.read().decode()
            with open(os.path.join(args.artifact_dir, "metrics.prom"),
                      "w") as fh:
                fh.write(metrics_text)
            check("repro_service" in metrics_text, "/metrics dump captured")
            if rejected:
                check("service_rejected" in metrics_text.replace("/", "_")
                      or "service/rejected" in metrics_text,
                      "rejections visible in exported metrics")
        finally:
            stop_server(proc, "chaos server")

        corruption_phase(index_dir, args.artifact_dir)
    finally:
        leaked = shm_segments() - shm_before
        for path in leaked:  # clean up before failing loudly
            try:
                os.unlink(path)
            except OSError:
                pass
        shutil.rmtree(index_dir, ignore_errors=True)
    check(not leaked, f"zero leaked /dev/shm segments (leaked: {leaked})")

    print("\nchaos load: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
