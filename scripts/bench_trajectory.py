#!/usr/bin/env python
"""Append one performance-trajectory record to ``BENCH_trajectory.json``.

The trajectory file is a checked-in, append-only time series: every CI
run (and any developer who wants a data point) runs the same three fixed
core benches and appends one ``repro/bench-trajectory-v1`` record, so
performance history travels with the repository instead of living in an
external dashboard:

* ``index_build`` — wall seconds to build the SCT*-Index for the golden
  dataset;
* ``path_throughput`` — paths/second over one full ``iter_paths`` sweep;
* ``service_query`` — cold and warm query latency digests (p50/p99)
  measured through an in-process :class:`~repro.service.ReproService`,
  read back from the server-wide ``service/latency/query/*`` histograms
  — the very numbers ``/v1/stats`` and ``GET /metrics`` report;
* ``index_update`` — steady-state single-edge toggles through
  ``repro.core.update``: p50/p99 update latency, the mean dirty-region
  fraction, and the speedup over the full rebuild measured above.

The record is validated against ``repro.obs.validate.validate_trajectory``
before the file is rewritten, and the whole file is re-validated after
the append, so a malformed record can never land.

Run from the repo root::

    PYTHONPATH=src python scripts/bench_trajectory.py --quick
"""

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from datetime import datetime, timezone

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core import SCTIndex  # noqa: E402
from repro.datasets import load_dataset  # noqa: E402
from repro.obs.validate import (  # noqa: E402
    TRAJECTORY_SCHEMA,
    validate_trajectory,
)
from repro.service import ReproService, ServiceConfig  # noqa: E402


def _git_commit():
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def bench_index_build(graph):
    t0 = time.perf_counter()
    index = SCTIndex.build(graph)
    return index, {"seconds": time.perf_counter() - t0}


def bench_path_throughput(index, k):
    t0 = time.perf_counter()
    paths = sum(1 for _ in index.iter_paths(k))
    seconds = time.perf_counter() - t0
    return {
        "paths": paths,
        "seconds": seconds,
        "paths_per_s": paths / seconds if seconds > 0 else 0.0,
    }


def bench_index_update(graph, index, full_rebuild_s, toggles=10):
    """Steady-state single-edge toggles (delete, re-insert, repeat)."""
    from repro.core.update import compute_update

    edge = next(
        (u, v) for u in range(graph.n) for v in graph.neighbors(u) if u < v
    )
    current_graph, current_index = graph, index
    times, fractions = [], []
    for i in range(toggles):
        batch = {"deletes": [edge]} if i % 2 == 0 else {"inserts": [edge]}
        t0 = time.perf_counter()
        region = compute_update(current_index, current_graph, **batch)
        times.append(time.perf_counter() - t0)
        fractions.append(region.dirty_fraction)
        current_graph, current_index = region.graph, region.index
    times.sort()
    p50 = times[len(times) // 2]
    p99 = times[min(len(times) - 1, int(len(times) * 0.99))]
    return {
        "count": len(times),
        "p50_s": p50,
        "p99_s": p99,
        "dirty_fraction": sum(fractions) / len(fractions),
        "full_rebuild_s": full_rebuild_s,
        "speedup_vs_rebuild": full_rebuild_s / p50 if p50 > 0 else 0.0,
    }


def bench_service_query(dataset, k, iterations, warm_queries):
    """Cold + warm latency digests from the service's own histograms."""
    service = ReproService(ServiceConfig())
    request = {
        "op": "query", "dataset": dataset, "k": k, "iterations": iterations,
    }
    for i in range(1 + warm_queries):
        response = service.handle_request(dict(request))
        if response.get("code") != 0:
            raise SystemExit(
                f"service query failed (code {response.get('code')}): "
                f"{response.get('error')}"
            )
    digests = service.stats_snapshot()["histograms"]
    out = {}
    for temperature in ("cold", "warm"):
        digest = digests.get(f"service/latency/query/{temperature}")
        if digest is None:
            raise SystemExit(
                f"no {temperature} latency histogram was recorded"
            )
        out[temperature] = {
            "count": digest["count"],
            "p50_s": digest["p50"],
            "p99_s": digest["p99"],
        }
    return out


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=os.path.join(REPO_ROOT, "BENCH_trajectory.json"),
        help="trajectory file to append to (default: repo root)",
    )
    parser.add_argument("--dataset", default="email")
    parser.add_argument("--k", type=int, default=7)
    parser.add_argument(
        "--iterations", type=int, default=10,
        help="refinement iterations per service query (default 10)",
    )
    parser.add_argument(
        "--warm-queries", type=int, default=20,
        help="warm (result-cached) queries to sample (default 20)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller warm sample for CI (5 warm queries)",
    )
    args = parser.parse_args(argv)
    warm_queries = 5 if args.quick else args.warm_queries

    print(f"dataset={args.dataset} k={args.k} warm_queries={warm_queries}")
    graph = load_dataset(args.dataset)
    index, index_build = bench_index_build(graph)
    print(f"index_build: {index_build['seconds']:.3f}s")
    path_throughput = bench_path_throughput(index, args.k)
    print(
        f"path_throughput: {path_throughput['paths']} paths in "
        f"{path_throughput['seconds']:.3f}s "
        f"({path_throughput['paths_per_s']:.0f}/s)"
    )
    index_update = bench_index_update(graph, index, index_build["seconds"])
    print(
        f"index_update: n={index_update['count']} "
        f"p50={index_update['p50_s']:.4g}s "
        f"p99={index_update['p99_s']:.4g}s "
        f"dirty={index_update['dirty_fraction']:.3f} "
        f"speedup={index_update['speedup_vs_rebuild']:.1f}x"
    )
    service_query = bench_service_query(
        args.dataset, args.k, args.iterations, warm_queries
    )
    for temperature in ("cold", "warm"):
        digest = service_query[temperature]
        print(
            f"service_query.{temperature}: n={digest['count']} "
            f"p50={digest['p50_s']:.4g}s p99={digest['p99_s']:.4g}s"
        )

    record = {
        "schema": TRAJECTORY_SCHEMA,
        "recorded_at": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "git": _git_commit(),
        "dataset": args.dataset,
        "k": args.k,
        "benches": {
            "index_build": index_build,
            "path_throughput": path_throughput,
            "index_update": index_update,
            "service_query": service_query,
        },
    }

    trajectory = []
    if os.path.exists(args.output):
        with open(args.output, encoding="utf-8") as fh:
            trajectory = json.load(fh)
        if not isinstance(trajectory, list):
            raise SystemExit(f"{args.output} is not a JSON array")
    trajectory.append(record)
    errors = validate_trajectory(trajectory)
    if errors:
        raise SystemExit(
            "refusing to write an invalid trajectory:\n  "
            + "\n  ".join(errors)
        )
    tmp = args.output + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(trajectory, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, args.output)
    print(f"appended record {len(trajectory)} to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
