#!/usr/bin/env python
"""End-to-end smoke test for the service's telemetry surface.

Starts ``python -m repro serve`` as a subprocess with ``--trace`` and
``--access-log`` enabled, drives a mixed cold/warm workload, and then
asserts the observability contract:

1. every response envelope carries a ``request_id``; a client-supplied
   id is echoed verbatim, server-generated ids are unique;
2. ``GET /metrics`` serves parseable Prometheus text whose histogram
   buckets are monotonically non-decreasing and whose ``_count``/
   ``_sum`` agree with the ``/v1/stats`` digests — and whose buckets
   re-derive the *exact* p50/p95/p99 that ``/v1/stats`` reports;
3. the access log holds one JSON object per request with the matching
   request ids and cold/warm temperatures;
4. the JSONL trace passes ``repro.obs.validate`` and its request-scoped
   events carry ``rid`` stamps;
5. SIGTERM still drains cleanly with telemetry enabled.

Run from the repo root::

    PYTHONPATH=src python scripts/telemetry_smoke.py
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.obs import (  # noqa: E402
    Histogram,
    histogram_from_buckets,
    parse_exposition,
    sanitize_metric_name,
)
from repro.obs.validate import validate_trace_lines  # noqa: E402

DATASET = "email"
K = 7


def rpc(port, path, obj, timeout=300):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(obj).encode(),
        method="POST",
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read().decode().splitlines()[0])


def scrape(port, timeout=60):
    req = urllib.request.Request(f"http://127.0.0.1:{port}/metrics")
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        content_type = resp.headers.get("Content-Type", "")
        return resp.read().decode("utf-8"), content_type


def check(condition, message):
    if not condition:
        raise SystemExit(f"FAIL: {message}")
    print(f"ok: {message}")


def main():
    tmp = tempfile.mkdtemp(prefix="telemetry-smoke-")
    trace_path = os.path.join(tmp, "trace.jsonl")
    access_path = os.path.join(tmp, "access.jsonl")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--port", "0",
            "--trace", trace_path, "--access-log", access_path,
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
    )
    try:
        announce = proc.stdout.readline()
        check("listening on http://" in announce,
              f"daemon announced itself: {announce.strip()}")
        port = int(announce.rsplit(":", 1)[1])

        # mixed workload: one cold query, several warm repeats, a build,
        # a profile, and one client-correlated request
        query = {"dataset": DATASET, "k": K, "method": "sctl*"}
        responses = [rpc(port, "/v1/query", query) for _ in range(4)]
        build = rpc(port, "/v1/build", {"dataset": DATASET})
        profile = rpc(port, "/v1/profile", {"dataset": DATASET})
        # a fresh (cold) query so the correlated computation's trace
        # events exist and carry the client's id
        tagged = rpc(port, "/v1/query",
                     dict(query, k=K + 1, request_id="smoke-rid-42"))
        responses += [build, profile, tagged]

        # 1. request ids: present everywhere, echoed when supplied
        rids = [r.get("request_id") for r in responses]
        check(all(isinstance(rid, str) and rid for rid in rids),
              "every response carries a request_id")
        check(tagged["request_id"] == "smoke-rid-42",
              "client-supplied request_id is echoed verbatim")
        generated = rids[:-1]
        check(len(set(generated)) == len(generated),
              f"{len(generated)} server-generated ids are unique")

        # 2. /metrics vs /v1/stats — stats first, then the scrape: the
        # stats request's own latency sample is observed after its
        # payload is built, so only the later scrape sees it (the stats
        # op's histogram is therefore excluded from the exact check)
        stats = rpc(port, "/v1/stats", {})["stats"]
        text, content_type = scrape(port)
        check(content_type.startswith("text/plain"),
              f"/metrics content type is {content_type!r}")
        parsed = parse_exposition(text)
        hist_names = [
            name for name in stats["histograms"]
            if name.startswith("service/latency/")
            and not name.startswith("service/latency/stats/")
        ]
        check("service/latency/query/cold" in hist_names
              and "service/latency/query/warm" in hist_names,
              f"stats exposes cold+warm latency digests ({hist_names})")
        for name in hist_names:
            digest = stats["histograms"][name]
            metric = parsed[sanitize_metric_name(name)]
            check(metric["type"] == "histogram",
                  f"{name} scrapes as a histogram")
            cumulative = [count for _, count in metric["buckets"]]
            check(cumulative == sorted(cumulative),
                  f"{name} buckets are monotone")
            check(metric["count"] == digest["count"]
                  and metric["buckets"][-1][1] == digest["count"],
                  f"{name} _count == stats count == +Inf bucket")
            check(abs(metric["sum"] - digest["sum"]) < 1e-9,
                  f"{name} _sum matches stats sum")
            bounds, counts = histogram_from_buckets(metric["buckets"])
            rebuilt = Histogram.from_snapshot({
                "bounds": bounds, "counts": counts,
                "sum": metric["sum"], "count": metric["count"],
            })
            for q, field in ((0.50, "p50"), (0.95, "p95"), (0.99, "p99")):
                check(rebuilt.quantile(q) == digest[field],
                      f"{name} {field} re-derived from scraped buckets")
        # counters agree too
        for counter, value in stats["counters"].items():
            metric = parsed.get(sanitize_metric_name(counter) + "_total")
            check(metric is not None and metric["value"] == value,
                  f"counter {counter} agrees ({value})")

        # 3. the access log: one JSON object per request, matching rids
        with open(access_path, encoding="utf-8") as fh:
            entries = [json.loads(line) for line in fh if line.strip()]
        # +1: the /v1/stats request above is logged as well
        check(len(entries) == len(responses) + 1,
              f"access log holds {len(entries)} entries")
        logged_rids = {e["request_id"] for e in entries}
        check(set(rids) <= logged_rids,
              "every response request_id appears in the access log")
        temps = [e["temp"] for e in entries if e["op"] == "query"]
        check("cold" in temps and "warm" in temps,
              f"access log records cold and warm queries ({temps})")

        # 4. graceful drain with telemetry enabled
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=120)
        check(proc.returncode == 0, "daemon exited 0 on SIGTERM")
        check("repro service drained" in out, "daemon reported a clean drain")

        # 5. the trace validates and carries rid stamps
        with open(trace_path, encoding="utf-8") as fh:
            lines = fh.readlines()
        errors = validate_trace_lines(lines)
        check(not errors, f"trace validates ({len(lines)} events)")
        stamped = [
            json.loads(line) for line in lines
            if json.loads(line).get("rid")
        ]
        check(stamped, f"{len(stamped)} trace events carry rid stamps")
        check(any(e.get("rid") == "smoke-rid-42" for e in stamped),
              "the client-correlated request's events carry its rid")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    print("telemetry smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
